(* Multicore site analysis (OCaml 5 domains).

   An engine is immutable once created, so the per-site loop is
   embarrassingly parallel — but cone sizes vary by orders of magnitude
   across a netlist, so the old static contiguous chunking left domains
   idle behind whichever chunk drew the deep cones.  Work items are instead
   claimed one at a time from a shared Atomic counter (work stealing by
   index); each domain owns one workspace, so the whole sweep allocates
   per-domain scratch once and per-item results only.  Results land in a
   shared array at their input index, so output order is the input order
   regardless of which domain analyzed what.

   Exception safety: spawned helper domains are always joined — the calling
   domain participates as a worker under [Fun.protect], and workers never
   let an exception escape their domain.  A failing item records its
   exception in a shared slot (lowest input index wins, so the propagated
   exception is deterministic regardless of domain scheduling); the
   remaining workers stop claiming new items, every started item still
   finishes, and the recorded exception is re-raised with its backtrace
   after all domains are joined.

   This is a wall-clock optimization only: SysT in the Table-2 sense is
   single-threaded by definition (and the paper's machine was), so the
   experiment driver does not use this module. *)

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

(* [shorter_than l n] walks at most [n] cons cells — the small-batch check
   must not pay O(length sites) just to learn the batch is large. *)
let rec shorter_than l n =
  n > 0
  &&
  match l with
  | [] -> true
  | _ :: tl -> shorter_than tl (n - 1)

let resolve_domains ~who = function
  | Some d ->
    if d < 1 then invalid_arg (who ^ ": domains must be >= 1");
    d
  | None -> default_domains ()

(* Record (index, exn, backtrace) keeping the lowest index.  Indexes are
   claimed in increasing order from the shared counter and every claimed item
   runs to completion (success or record), so after the join the slot holds
   the exception of the lowest failing input index — deterministically. *)
let record_failure failure i exn bt =
  let rec loop () =
    let cur = Atomic.get failure in
    match cur with
    | Some (j, _, _) when j <= i -> ()
    | _ -> if not (Atomic.compare_and_set failure cur (Some (i, exn, bt))) then loop ()
  in
  loop ()

(* Telemetry handles for one map_array call.  [tasks] counts every executed
   item (including the sequential small-batch path — the CLI acceptance
   check reads it on tiny embedded circuits); [stolen] counts items executed
   by spawned helper domains, i.e. work that migrated off the calling
   domain.  Worker wall/busy times only get sampled when a live metrics
   sink is installed. *)
type instruments = {
  timed : bool;
  tasks : Obs.Metrics.counter;  (* parallel.tasks_executed *)
  stolen : Obs.Metrics.counter;  (* parallel.tasks_stolen *)
  batches : Obs.Metrics.counter;  (* parallel.batches *)
  spawned : Obs.Metrics.counter;  (* parallel.workers_spawned *)
  idle : Obs.Metrics.histogram;  (* parallel.worker_idle_seconds *)
  busy : Obs.Metrics.histogram;  (* parallel.worker_busy_seconds *)
}

let instruments () =
  let m = Obs.Hooks.metrics () in
  {
    timed = not (Obs.Metrics.is_null m);
    tasks = Obs.Metrics.counter m "parallel.tasks_executed";
    stolen = Obs.Metrics.counter m "parallel.tasks_stolen";
    batches = Obs.Metrics.counter m "parallel.batches";
    spawned = Obs.Metrics.counter m "parallel.workers_spawned";
    idle = Obs.Metrics.histogram m "parallel.worker_idle_seconds";
    busy = Obs.Metrics.histogram m "parallel.worker_busy_seconds";
  }

(* The shared work-stealing core.  [deadline] is checked at task dispatch:
   a worker that finds the budget expired stops claiming — every item
   already claimed still runs to completion, so the option array holds
   exactly the finished prefix of claims and [None] for items never
   started.  With [Obs.Deadline.never] every index is handed out and every
   slot is [Some]. *)
let run_stealing ?ctx ~domains ~deadline ~workspace ~f items =
  let n = Array.length items in
  let m = instruments () in
  Obs.Metrics.incr m.batches;
  if n = 0 then [||]
  else if domains = 1 || n < 2 * domains then begin
    let ws = workspace () in
    let results = Array.make n None in
    let executed = ref 0 in
    (try
       for i = 0 to n - 1 do
         if Obs.Deadline.expired deadline then raise Exit;
         results.(i) <- Some (f ws items.(i));
         incr executed
       done
     with Exit -> ());
    Obs.Metrics.add m.tasks !executed;
    results
  end
  else begin
    let tracer = Obs.Hooks.tracer () in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker ~helper () =
      (* The ctx args on the worker span are what let a request's spans
         from every domain join into one tree in the trace viewer. *)
      Obs.Trace.span tracer ~cat:"parallel" ~args:(Obs.Ctx.args_of ctx)
        "parallel.worker"
      @@ fun () ->
      let started = if m.timed then Obs.Clock.wall_seconds () else 0.0 in
      let busy = ref 0.0 in
      let executed = ref 0 in
      let ws = workspace () in
      let continue = ref true in
      while !continue do
        if Obs.Deadline.expired deadline then continue := false
        else begin
          let i = Atomic.fetch_and_add next 1 in
          if i >= n || Atomic.get failure <> None then continue := false
          else begin
            let item_t0 = if m.timed then Obs.Clock.wall_seconds () else 0.0 in
            (match f ws items.(i) with
            | r -> results.(i) <- Some r
            | exception e ->
              record_failure failure i e (Printexc.get_raw_backtrace ()));
            if m.timed then
              busy := !busy +. (Obs.Clock.wall_seconds () -. item_t0);
            incr executed
          end
        end
      done;
      Obs.Metrics.add m.tasks !executed;
      if helper then Obs.Metrics.add m.stolen !executed;
      if m.timed then begin
        let elapsed = Obs.Clock.wall_seconds () -. started in
        Obs.Metrics.observe m.busy !busy;
        Obs.Metrics.observe m.idle (Float.max 0.0 (elapsed -. !busy))
      end
    in
    let helpers =
      List.init (domains - 1) (fun _ -> Domain.spawn (worker ~helper:true))
    in
    Obs.Metrics.add m.spawned (domains - 1);
    (* The calling domain participates instead of blocking in join; the
       [protect] guarantees the joins even if this worker's own [workspace]
       call raises. *)
    Fun.protect
      ~finally:(fun () -> List.iter Domain.join helpers)
      (worker ~helper:false);
    match Atomic.get failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> results
  end

let map_array ?ctx ?domains ~workspace ~f items =
  let domains = resolve_domains ~who:"Parallel.map_array" domains in
  run_stealing ?ctx ~domains ~deadline:Obs.Deadline.never ~workspace ~f items
  |> Array.map (function
       | Some r -> r
       | None -> assert false (* no deadline: counter handed out every index *))

let map_array_until ?ctx ?domains ?(deadline = Obs.Deadline.never) ~workspace
    ~f items =
  let domains = resolve_domains ~who:"Parallel.map_array_until" domains in
  run_stealing ?ctx ~domains ~deadline ~workspace ~f items

let analyze_sites ?domains engine sites =
  let domains = resolve_domains ~who:"Parallel.analyze_sites" domains in
  match sites with
  | [] -> []
  | _ :: _ when domains = 1 || shorter_than sites (2 * domains) ->
    Epp_engine.analyze_sites engine sites
  | _ :: _ ->
    map_array ~domains
      ~workspace:(fun () -> Epp_engine.Workspace.create engine)
      ~f:Epp_engine.Workspace.analyze_site (Array.of_list sites)
    |> Array.to_list

(* Array-native per-site sweep: the whole-circuit driver used to build a
   [List.init n] just to turn it back into an array here — on a
   million-node netlist that is a million cons cells on the hot path for
   nothing.  The array goes straight to the work-stealing loop. *)
let analyze_site_array ?domains engine sites =
  let domains = resolve_domains ~who:"Parallel.analyze_site_array" domains in
  let n = Array.length sites in
  if n = 0 then [||]
  else if domains = 1 || n < 2 * domains then begin
    let ws = Epp_engine.Workspace.create engine in
    Array.map (Epp_engine.Workspace.analyze_site ws) sites
  end
  else
    map_array ~domains
      ~workspace:(fun () -> Epp_engine.Workspace.create engine)
      ~f:Epp_engine.Workspace.analyze_site sites

(* Batched sweep: each work item is a whole block (one O(V + E) pass over
   up to [lanes] sites), so the small-batch spawn decision counts *blocks*,
   not sites — the per-site threshold would spawn domains for sweeps the
   block engine finishes in a handful of passes. *)
let analyze_sites_batched ?domains ?lanes engine sites =
  let domains = resolve_domains ~who:"Parallel.analyze_sites_batched" domains in
  let lanes =
    match lanes with
    | None -> Epp_batch.max_lanes
    | Some l ->
      if l < 1 || l > Epp_batch.max_lanes then
        invalid_arg
          (Printf.sprintf
             "Parallel.analyze_sites_batched: lanes must be in [1, %d]"
             Epp_batch.max_lanes);
      l
  in
  let total = Array.length sites in
  if total = 0 then [||]
  else begin
    let nblocks = (total + lanes - 1) / lanes in
    if domains = 1 || nblocks < 2 * domains then
      Epp_batch.analyze_site_array ~lanes engine sites
    else begin
      let blocks =
        Array.init nblocks (fun i ->
            let off = i * lanes in
            Array.sub sites off (min lanes (total - off)))
      in
      let per_block =
        map_array ~domains
          ~workspace:(fun () -> Epp_batch.Block.create ~lanes engine)
          ~f:Epp_batch.Block.run blocks
      in
      (* The earliest failing site's exception propagates, matching the
         sequential drivers: blocks and lanes are scanned in input order. *)
      let out = Array.make total None in
      Array.iteri
        (fun bi results ->
          Array.iteri
            (fun l r ->
              match r with
              | Ok r -> out.((bi * lanes) + l) <- Some r
              | Error e -> raise e)
            results)
        per_block;
      Array.map
        (function Some r -> r | None -> assert false (* every lane filled *))
        out
    end
  end

let analyze_all ?domains engine =
  let n = Netlist.Circuit.node_count (Epp_engine.circuit engine) in
  Array.to_list (analyze_site_array ?domains engine (Array.init n Fun.id))
