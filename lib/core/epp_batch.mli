(** Level-synchronous batched EPP sweep: the four-state vectors of a block
    of up to {!max_lanes} error sites propagate together in one level-order
    pass over the shared forward CSR.

    Where the per-site kernel ({!Epp_engine.Workspace}) extracts and walks
    each site's cone — O(sites · E) when cones are dense — the batch engine
    pays one O(V + E) pass per block: node-major lane-stride float planes,
    a per-node lane bitmask in place of per-site cones, gates scheduled by
    ASAP level ({!Netlist.Analysis.level_gates}), and lane compaction inside
    {!Rules.Lanes} so drained lanes cost nothing.  Per lane the arithmetic
    mirrors the kernel operation-for-operation, so results are
    bit-identical; the per-site kernel remains the conformance oracle.

    Polarity mode only; an engine in [Naive] mode is rejected at block
    creation. *)

val max_lanes : int
(** Sites per block, 62: one OCaml int per node carries the block's cone
    membership bitmask. *)

(** One block workspace: the reusable planes, masks and scratch for blocks
    of up to [lanes] sites.  Single-owner mutable state — one per domain,
    reusable across any number of blocks. *)
module Block : sig
  type ws

  val create : ?ctx:Obs.Ctx.t -> ?lanes:int -> Epp_engine.t -> ws
  (** Workspace for blocks of up to [lanes] (default {!max_lanes}) sites.
      [ctx] labels every block span run on this workspace with the request
      id (the workspace, not {!run}, carries it — [run] stays a
      first-class [ws -> int array -> _] value for the schedulers).
      @raise Invalid_argument if the engine is in [Naive] mode or [lanes]
      is outside [1, max_lanes]. *)

  val engine : ws -> Epp_engine.t

  val lanes : ws -> int
  (** The block capacity this workspace was created with. *)

  val run : ws -> int array -> (Epp_engine.site_result, exn) result array
  (** [run b sites] analyzes every site of the block in one shared pass and
      returns per-lane results aligned with [sites].  A lane whose site
      would make the per-site kernel raise (invalid off-path probability,
      rule defect, arity violation) yields [Error] with that exception —
      the exception the kernel would have raised — while the other lanes
      complete normally.  Duplicate sites are allowed.
      @raise Invalid_argument on a bad site id or more than [lanes b]
      sites. *)

  val lane_vector_defect : ws -> int -> float
  (** Block twin of {!Epp_engine.Workspace.last_vector_defect}: the worst
      four-state sum drift from 1 at the observation nets lane [l] reached
      in the last {!run} (NaN if any component is NaN).  Only meaningful
      between a [run] and the next one. *)
end

(** {2 Whole-sweep drivers}

    Sequential block-at-a-time drivers with the same signatures and
    exception behaviour as {!Epp_engine.analyze_sites} /
    {!Epp_engine.analyze_all} (the earliest failing site's exception is
    raised).  {!Epp.Parallel} schedules blocks across domains on top of
    {!Block.run}.

    [deadline] (default {!Obs.Deadline.never}) is polled at block
    boundaries; since these drivers return whole arrays, expiry raises
    {!Obs.Deadline.Expired} rather than returning partial results — use
    {!Supervisor.sweep} when partial coverage should be kept. *)

val analyze_site_array :
  ?lanes:int ->
  ?deadline:Obs.Deadline.t ->
  Epp_engine.t ->
  int array ->
  Epp_engine.site_result array

val analyze_sites :
  ?lanes:int ->
  ?deadline:Obs.Deadline.t ->
  Epp_engine.t ->
  int list ->
  Epp_engine.site_result list

val analyze_all :
  ?lanes:int ->
  ?deadline:Obs.Deadline.t ->
  Epp_engine.t ->
  Epp_engine.site_result list

(** {2 Density heuristic} *)

val density : Epp_engine.t -> float
(** Estimated mean cone size over circuit size, from {!density_samples}
    evenly-spaced sample cones served by the shared analysis cache.
    Exposed as the [epp.batch.density] gauge. *)

val density_samples : int

val should_batch :
  ?density_threshold:float ->
  ?min_nodes:int ->
  ?min_sites:int ->
  Epp_engine.t ->
  sites:int ->
  bool
(** The batch-vs-per-site dispatch decision: batch only pays when cones are
    dense and the sweep is big.  True iff the engine is polarity-mode with
    the cone restriction on, the circuit has at least [min_nodes] (default
    256) nodes, the sweep covers at least [min_sites] (default 8) sites,
    and {!density} is at least [density_threshold] (default 0.02).  Tiny or
    cone-local circuits keep the per-site kernel. *)

val default_density_threshold : float
val default_min_nodes : int
val default_min_sites : int
