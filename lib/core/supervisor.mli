(** Supervised per-site analysis: the degradation ladder that lets a sweep
    survive poisoned sites instead of dying on the first one.

    Every site is tried on a (up to) four-rung ladder:

    + when batching is on ({!batch_mode}), the level-synchronous
      {!Epp_batch} block engine, post-checked per lane by the numeric
      sentinels (NaN components, {!Epp_batch.Block.lane_vector_defect}
      beyond tolerance, result probabilities outside [0, 1]) — a faulted
      lane degrades {e alone}, carrying its batch fault, while the rest of
      its block completes;
    + the allocation-free {!Epp_engine.Workspace} kernel, post-checked the
      same way ({!Epp_engine.Workspace.last_vector_defect});
    + on any kernel exception or sentinel trip, the boxed
      {!Epp_engine.analyze_site} reference path, result-checked;
    + if that also fails, the site is {e quarantined} into a typed
      {!Diag.quarantine} record and the sweep continues.

    Fan-out uses {!Parallel.map_array}; batched sweeps hand each domain
    whole blocks (one O(V + E) pass each) instead of per-site crumbs.
    Because the per-site wrapper never raises, one bad site can neither
    kill nor deadlock the sweep.  Sites are processed in chunks so a
    checkpoint callback ({!Report.Checkpoint} wires one) sees completed
    results periodically. *)

type entry =
  | Analyzed of { result : Epp_engine.site_result; step : Diag.step }
      (** the rung that produced the result *)
  | Quarantined of Diag.quarantine

(** Whether the sweep starts on the batch rung.  [Auto] (the default)
    consults {!Epp_batch.should_batch} — dense circuits batch, tiny or
    cone-local ones keep the per-site kernel; [Always] forces the batch
    rung whenever the engine supports it (polarity mode); [Never] is the
    pre-batch ladder. *)
type batch_mode =
  | Auto
  | Always
  | Never

type outcome = {
  entries : (int * entry) list;  (** (site, entry), in input order *)
  stats : Diag.stats;
  completion : Diag.completion;
      (** whether every requested site was covered, or the sweep's
          {!Obs.Deadline} budget expired first (entries then hold the
          finished subset — nothing finished is ever dropped) *)
}

val default_tolerance : float
(** [1e-6] — matches {!Prob4.normalize}'s drift bound: a larger defect is a
    rule bug or poisoned input, not rounding. *)

val analyze_entry :
  ?ctx:Obs.Ctx.t ->
  ?tolerance:float ->
  ?prior_faults:(Diag.step * Diag.fault) list ->
  ?kernel:(Epp_engine.Workspace.ws -> int -> Epp_engine.site_result) ->
  ?reference:(Epp_engine.t -> int -> Epp_engine.site_result) ->
  Epp_engine.Workspace.ws ->
  int ->
  entry
(** One site through the per-site rungs (kernel -> reference ->
    quarantine); never raises.  [prior_faults] carries faults from earlier
    rungs (the batch rung's per-lane fault) into the quarantine record.
    [kernel] / [reference] replace the rung implementations — the
    deterministic fault-injection seam used by the resilience tests (a stub
    that raises or returns a defective result exercises each rung; the
    vector-sum sentinel only runs for the real kernel, since a stub leaves
    no vectors in the workspace).  Ladder transitions log through
    {!Obs.Log}: a kernel-rung failure emits [supervisor.degrade] (Debug), a
    quarantine emits [supervisor.quarantine] (Warn) — both carrying [ctx]'s
    request id. *)

val sweep :
  ?ctx:Obs.Ctx.t ->
  ?domains:int ->
  ?tolerance:float ->
  ?chunk_size:int ->
  ?on_chunk:(done_count:int -> total:int -> (int * entry) list -> unit) ->
  ?batch:batch_mode ->
  ?batch_run:
    (Epp_batch.Block.ws ->
    int array ->
    (Epp_engine.site_result, exn) result array) ->
  ?kernel:(Epp_engine.Workspace.ws -> int -> Epp_engine.site_result) ->
  ?reference:(Epp_engine.t -> int -> Epp_engine.site_result) ->
  ?deadline:Obs.Deadline.t ->
  Epp_engine.t ->
  int list ->
  outcome
(** Supervised parallel sweep over the given sites.  [on_chunk] fires after
    each completed chunk ([chunk_size] sites, default 1024) with that
    chunk's entries, on the calling domain — the checkpoint hook.  An
    exception from [on_chunk] itself aborts the sweep (all domains already
    joined) and propagates.  [batch] selects the batch rung (default
    {!Auto}); [batch_run] replaces the block engine — the fault-injection
    seam for the batch rung (per-lane [Error]s degrade those lanes, a raise
    degrades the whole block; the lane vector sentinel only runs for the
    real engine).

    [deadline] (default {!Obs.Deadline.never}) is polled cooperatively at
    chunk boundaries and at each task claim inside a chunk: on expiry the
    sweep stops starting new sites, keeps every finished entry, reports the
    partial coverage in [outcome.completion] ({!Diag.Deadline_expired}),
    and returns normally — it never raises on expiry, and [on_chunk] has
    already seen every finished entry, so a checkpoint written from it
    holds exactly the completed work.

    [ctx] is threaded to every rung, span, and log event the sweep emits —
    the [supervisor.sweep] / [supervisor.chunk] / [parallel.worker] /
    [epp.batch.block] spans all carry its request id as span args, expiry
    logs [supervisor.deadline_expired] (Warn) — so one request's work is
    one correlated tree even across domains.
    @raise Invalid_argument if [domains < 1] or [chunk_size < 1]. *)

val sweep_all :
  ?ctx:Obs.Ctx.t ->
  ?domains:int ->
  ?tolerance:float ->
  ?chunk_size:int ->
  ?on_chunk:(done_count:int -> total:int -> (int * entry) list -> unit) ->
  ?batch:batch_mode ->
  ?batch_run:
    (Epp_batch.Block.ws ->
    int array ->
    (Epp_engine.site_result, exn) result array) ->
  ?kernel:(Epp_engine.Workspace.ws -> int -> Epp_engine.site_result) ->
  ?reference:(Epp_engine.t -> int -> Epp_engine.site_result) ->
  ?deadline:Obs.Deadline.t ->
  Epp_engine.t ->
  outcome
(** {!sweep} over every node of the engine's circuit. *)

val results : outcome -> Epp_engine.site_result list
(** The successfully analyzed results, input order (quarantines dropped). *)

val quarantines : outcome -> Diag.quarantine list

val stats_of_entries : ?resumed:int -> (int * entry) list -> Diag.stats
(** Recount a merged entry list (checkpoint replay + fresh analysis);
    [resumed] is carried into the result. *)
