(* Incremental re-analysis after a Transform edit.

   A whole-circuit sweep is a per-site computation: site s's result depends
   only on s's forward cone (gate kinds and wiring on the cone, signal
   probabilities of the cone's side inputs) and on which observation points
   the cone reaches.  After an edit, a site whose dependencies all survived
   bit-identically does not need re-analysis — its pre-edit result can be
   spliced into the new outcome under the id remap, and the supervised
   sweep only runs over the dirty complement.

   Dirty geometry (per new node, evaluated over BOTH circuits — the old
   side catches paths the edit severed):
   - [Delta.backward_dirty]: the site's cone intersects a touched, added or
     removed node, so its wiring may have changed;
   - signal-probability seeds: where sp(w) changed bit-for-bit, sites
     reaching [w] (whose site-initialization uses sp) or any consumer of
     [w] (whose Table-1 rules read sp(w) as a side input) are dirty;
   - observation seeds: where position [i] of the observation list observes
     a different net than before, sites reaching either net are dirty.

   When the observation interfaces are incompatible (different length, a
   kind flip at some position, or an FF observation whose flip-flop does
   not map) no per-observation splice is meaningful and the plan degrades
   to a full sweep.

   Splice exactness: for a clean site every cone gate is an untouched
   survivor, every sp it reads is bit-equal, and every reached observation
   maps position-for-position, so the per-site pass would recompute the
   exact same floats — copying them is bit-identical (property-tested
   against a cold full sweep in test_incremental.ml). *)

let count name n =
  Obs.Metrics.add (Obs.Metrics.counter (Obs.Hooks.metrics ()) name) n

let set_gauge name v =
  Obs.Metrics.set_gauge (Obs.Metrics.gauge (Obs.Hooks.metrics ()) name) v

type plan = {
  delta : Netlist.Delta.t;
  dirty : bool array;  (* per new node id *)
  dirty_count : int;
  total : int;
  full : bool;  (* observation interfaces incompatible: everything dirty *)
}

let delta plan = plan.delta
let dirty plan = plan.dirty
let dirty_count plan = plan.dirty_count
let total plan = plan.total
let is_full plan = plan.full

let dirty_fraction plan =
  if plan.total = 0 then 0.0
  else float_of_int plan.dirty_count /. float_of_int plan.total

let rebase engine d =
  let ctx = Epp_engine.analysis engine in
  let _ctx, how = Netlist.Analysis.apply_delta ctx d in
  (* The fresh engine picks the patched (or rebuilt) context back up via
     Analysis.get; sp is recomputed from scratch — the sequential fixpoint
     is a global computation, and bit-comparing old vs new values is what
     the planner uses to bound the damage. *)
  let engine' =
    Epp_engine.create ~mode:(Epp_engine.mode engine)
      ~restrict_to_cone:(Epp_engine.restrict_to_cone engine)
      (Netlist.Delta.after d)
  in
  (engine', how)

(* Position-wise observation compatibility: the per-observation lists of a
   spliced result are remapped by position, which is only meaningful when
   every position keeps its kind (and, for FF observations, its flip-flop). *)
let observations_compatible ~obs_old ~obs_new ~new_of_old =
  Array.length obs_old = Array.length obs_new
  &&
  let ok = ref true in
  Array.iteri
    (fun i o ->
      match (o, obs_new.(i)) with
      | Netlist.Circuit.Po _, Netlist.Circuit.Po _ -> ()
      | Netlist.Circuit.Ff_data f_old, Netlist.Circuit.Ff_data f_new ->
        if new_of_old.(f_old) <> f_new then ok := false
      | _ -> ok := false)
    obs_old;
  !ok

let plan ~before ~after d =
  if not (Epp_engine.circuit before == Netlist.Delta.before d) then
    invalid_arg "Incremental.plan: before-engine is not on the delta's before-circuit";
  if not (Epp_engine.circuit after == Netlist.Delta.after d) then
    invalid_arg "Incremental.plan: after-engine is not on the delta's after-circuit";
  let c_old = Netlist.Delta.before d in
  let c_new = Netlist.Delta.after d in
  let n_new = Netlist.Circuit.node_count c_new in
  let new_of_old = Netlist.Delta.new_of_old d in
  let old_of_new = Netlist.Delta.old_of_new d in
  let obs_old = Array.of_list (Netlist.Circuit.observations c_old) in
  let obs_new = Array.of_list (Netlist.Circuit.observations c_new) in
  if not (observations_compatible ~obs_old ~obs_new ~new_of_old) then
    {
      delta = d;
      dirty = Array.make n_new true;
      dirty_count = n_new;
      total = n_new;
      full = true;
    }
  else begin
    let base = Netlist.Delta.backward_dirty d in
    let seeds_new = ref [] in
    let seeds_old = ref [] in
    let seed_new w =
      seeds_new := w :: !seeds_new;
      List.iter (fun g -> seeds_new := g :: !seeds_new) (Netlist.Circuit.fanouts c_new w)
    in
    let seed_old v =
      seeds_old := v :: !seeds_old;
      List.iter (fun g -> seeds_old := g :: !seeds_old) (Netlist.Circuit.fanouts c_old v)
    in
    let sp_old = (Epp_engine.signal_probabilities before).Sigprob.Sp.values in
    let sp_new = (Epp_engine.signal_probabilities after).Sigprob.Sp.values in
    for w = 0 to n_new - 1 do
      let v = old_of_new.(w) in
      if
        v >= 0
        && Int64.bits_of_float sp_old.(v) <> Int64.bits_of_float sp_new.(w)
      then begin
        seed_new w;
        seed_old v
      end
    done;
    Array.iteri
      (fun i o ->
        let net_old = Netlist.Circuit.observation_net c_old o in
        let net_new = Netlist.Circuit.observation_net c_new obs_new.(i) in
        if new_of_old.(net_old) <> net_new then begin
          seed_new net_new;
          seed_old net_old
        end)
      obs_old;
    let extra_new = Reach.backward_set (Netlist.Circuit.graph c_new) !seeds_new in
    let extra_old = Reach.backward_set (Netlist.Circuit.graph c_old) !seeds_old in
    let dirty = Array.make n_new false in
    let dirty_count = ref 0 in
    for w = 0 to n_new - 1 do
      let v = old_of_new.(w) in
      let is_dirty =
        base.(w) || extra_new.(w) || (v >= 0 && extra_old.(v))
      in
      dirty.(w) <- is_dirty;
      if is_dirty then incr dirty_count
    done;
    { delta = d; dirty; dirty_count = !dirty_count; total = n_new; full = false }
  end

(* Remap one pre-edit analyzed result onto the post-edit circuit.  The
   per-observation constructors are translated by list position (the
   compatibility check above guarantees positions align); floats are copied
   bit-for-bit. *)
let splice_result ~obs_map ~new_of_old (r : Epp_engine.site_result) =
  {
    r with
    Epp_engine.site = new_of_old.(r.Epp_engine.site);
    per_observation =
      List.map
        (fun (o, p) ->
          match Hashtbl.find_opt obs_map o with
          | Some o' -> (o', p)
          | None -> raise Exit)
        r.Epp_engine.per_observation;
  }

let sweep ?ctx ?domains ?tolerance ?chunk_size ?on_chunk ?batch ?batch_run
    ?kernel ?reference ?deadline plan ~prior engine =
  if not (Epp_engine.circuit engine == Netlist.Delta.after plan.delta) then
    invalid_arg "Incremental.sweep: engine is not on the plan's after-circuit";
  let d = plan.delta in
  let new_of_old = Netlist.Delta.new_of_old d in
  let old_of_new = Netlist.Delta.old_of_new d in
  let n_new = plan.total in
  let obs_map = Hashtbl.create 16 in
  if not plan.full then begin
    let obs_old = Array.of_list (Netlist.Circuit.observations (Netlist.Delta.before d)) in
    let obs_new = Array.of_list (Netlist.Circuit.observations (Netlist.Delta.after d)) in
    Array.iteri (fun i o -> Hashtbl.replace obs_map o obs_new.(i)) obs_old
  end;
  let prior_tbl = Hashtbl.create (List.length prior) in
  List.iter (fun (site, entry) -> Hashtbl.replace prior_tbl site entry) prior;
  (* Splice what we can; everything else (dirty, no prior, quarantined
     prior, or a failed observation remap) goes to the supervised sweep. *)
  let spliced = Hashtbl.create 64 in
  let to_sweep = ref [] in
  for w = n_new - 1 downto 0 do
    let v = old_of_new.(w) in
    let reused =
      (not plan.dirty.(w)) && v >= 0
      &&
      match Hashtbl.find_opt prior_tbl v with
      | Some (Supervisor.Analyzed { result; step }) -> (
        match splice_result ~obs_map ~new_of_old result with
        | r ->
          Hashtbl.replace spliced w (Supervisor.Analyzed { result = r; step });
          true
        | exception Exit -> false)
      | Some (Supervisor.Quarantined _) | None -> false
    in
    if not reused then to_sweep := w :: !to_sweep
  done;
  let to_sweep = !to_sweep in
  let swept =
    Supervisor.sweep ?ctx ?domains ?tolerance ?chunk_size ?on_chunk ?batch
      ?batch_run ?kernel ?reference ?deadline engine to_sweep
  in
  let swept_tbl = Hashtbl.create 64 in
  List.iter
    (fun (site, entry) -> Hashtbl.replace swept_tbl site entry)
    swept.Supervisor.entries;
  let entries = ref [] in
  for w = n_new - 1 downto 0 do
    match Hashtbl.find_opt spliced w with
    | Some entry -> entries := (w, entry) :: !entries
    | None -> (
      match Hashtbl.find_opt swept_tbl w with
      | Some entry -> entries := (w, entry) :: !entries
      | None -> () (* deadline expired before this site started *))
  done;
  let entries = !entries in
  let reused_count = Hashtbl.length spliced in
  count "epp.incremental.dirty_sites" (List.length to_sweep);
  count "epp.incremental.clean_reused" reused_count;
  set_gauge "epp.incremental.dirty_fraction"
    (if n_new = 0 then 0.0
     else float_of_int (List.length to_sweep) /. float_of_int n_new);
  {
    Supervisor.entries;
    stats = Supervisor.stats_of_entries ~resumed:reused_count entries;
    completion = swept.Supervisor.completion;
  }
