(** Multicore per-site analysis: the engine is immutable, so sites fan out
    across OCaml 5 domains.  Each domain claims the next work index from a
    shared [Atomic] counter (work stealing — static chunks load-imbalance
    badly because cone sizes vary by orders of magnitude) and runs it on its
    own per-domain workspace; results come back in input order.

    Exception safety: helper domains are always joined ([Fun.protect]), and
    when workers raise, the exception of the {e lowest} failing input index
    is re-raised (with its backtrace) after the join — deterministic
    regardless of domain scheduling.  Wall-clock only — the Table-2 SysT
    metric stays single-threaded. *)

val default_domains : unit -> int
(** [recommended_domain_count - 1], at least 1. *)

val map_array :
  ?ctx:Obs.Ctx.t ->
  ?domains:int ->
  workspace:(unit -> 'w) ->
  f:('w -> 'a -> 'b) ->
  'a array ->
  'b array
(** Generic work-stealing fan-out: [workspace ()] is called once per
    participating domain, [f ws item] once per item, results in input order.
    Small batches ([< 2 × domains]) run sequentially on one workspace.
    Used by {!analyze_sites} and by {!Supervisor.sweep}'s fault-isolating
    per-site wrapper.  [ctx] labels each worker's trace span with the
    request id, so spans from every domain join one request tree.
    @raise Invalid_argument if [domains < 1]; re-raises the first (lowest
    input index) worker exception after joining every spawned domain. *)

val map_array_until :
  ?ctx:Obs.Ctx.t ->
  ?domains:int ->
  ?deadline:Obs.Deadline.t ->
  workspace:(unit -> 'w) ->
  f:('w -> 'a -> 'b) ->
  'a array ->
  'b option array
(** {!map_array} with a cooperative budget checked at task dispatch: once
    [deadline] expires, workers stop claiming new items — items already
    started still finish, so the result holds [Some] for every completed
    item and [None] for items never started, and no finished work is lost.
    With the default {!Obs.Deadline.never} every slot is [Some].  Exception
    propagation is as in {!map_array}. *)

val analyze_sites :
  ?domains:int -> Epp_engine.t -> int list -> Epp_engine.site_result list
(** Same results as {!Epp_engine.analyze_sites}, in the same order.  Falls
    back to the sequential path for tiny batches.
    @raise Invalid_argument if [domains < 1]. *)

val analyze_site_array :
  ?domains:int -> Epp_engine.t -> int array -> Epp_engine.site_result array
(** Array-native {!analyze_sites}: no list round-trip on the hot path. *)

val analyze_sites_batched :
  ?domains:int ->
  ?lanes:int ->
  Epp_engine.t ->
  int array ->
  Epp_engine.site_result array
(** The batched multicore sweep: sites are chunked into {!Epp_batch} blocks
    of [lanes] (default {!Epp_batch.max_lanes}) and whole {e blocks} are
    scheduled per domain — each work item is one O(V + E) level-synchronous
    pass, so the small-batch fallback counts blocks, not sites.  Results
    are bit-identical to {!analyze_site_array} and come back in input
    order; the earliest failing site's exception propagates, as in the
    sequential drivers.
    @raise Invalid_argument if [domains < 1], [lanes] is out of range, the
    engine is in [Naive] mode, or a site id is bad. *)

val analyze_all : ?domains:int -> Epp_engine.t -> Epp_engine.site_result list
