(** Multicore per-site analysis: the engine is immutable, so sites fan out
    across OCaml 5 domains.  Each domain claims the next site index from a
    shared [Atomic] counter (work stealing — static chunks load-imbalance
    badly because cone sizes vary by orders of magnitude) and runs it on its
    own {!Epp_engine.Workspace}; results come back in input order.
    Wall-clock only — the Table-2 SysT metric stays single-threaded. *)

val default_domains : unit -> int
(** [recommended_domain_count - 1], at least 1. *)

val analyze_sites :
  ?domains:int -> Epp_engine.t -> int list -> Epp_engine.site_result list
(** Same results as {!Epp_engine.analyze_sites}, in the same order.  Falls
    back to the sequential path for tiny batches.
    @raise Invalid_argument if [domains < 1]. *)

val analyze_all : ?domains:int -> Epp_engine.t -> Epp_engine.site_result list
