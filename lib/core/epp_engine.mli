(** The paper's analytical EPP computation (Sec. 2): per error site, one
    topological pass over the site's output cone with the Table-1 rules,
    yielding the per-output propagation probabilities and

    [P_sensitized(n) = 1 - ∏ (1 - (Pa(POj) + Pā(POj)))].

    An engine value holds the circuit's shared {!Netlist.Analysis} context
    (topological order and friends, computed once per circuit, the SPT
    column of Table 2) and the signal probabilities, so each site analysis
    is a single cone-sized pass (the SysT column). *)

type mode =
  | Polarity  (** the paper's four-state rules *)
  | Naive  (** polarity-blind three-state ablation (see {!Rules.Naive}) *)

type t

type site_result = {
  site : int;
  p_sensitized : float;
  per_observation : (Netlist.Circuit.observation * float) list;
      (** [Pa + Pā] at each reachable observation point *)
  cone_size : int;  (** number of on-path signals *)
  reached_outputs : int;
}

exception
  Invalid_signal_probability of { node : int; name : string; value : float }
(** A caller-provided signal probability that is NaN or outside [0, 1] —
    named after the offending node instead of silently poisoning every cone
    that consumes it. *)

val create :
  ?mode:mode -> ?restrict_to_cone:bool -> ?sp:Sigprob.Sp.result -> Netlist.Circuit.t -> t
(** [sp] defaults to the sequential fixpoint probabilities when the circuit
    has flip-flops, and to the plain topological pass otherwise.
    [restrict_to_cone:false] is the whole-circuit ablation: identical
    results, no path-construction saving.
    @raise Invalid_argument if [sp] belongs to a different circuit.
    @raise Invalid_signal_probability if a provided [sp] entry is NaN or
    outside [0, 1]. *)

val circuit : t -> Netlist.Circuit.t

val analysis : t -> Netlist.Analysis.t
(** The circuit's shared analysis context the engine pulls its structural
    facts from. *)

val signal_probabilities : t -> Sigprob.Sp.result
val mode : t -> mode
val restrict_to_cone : t -> bool

val analyze_site : t -> int -> site_result
(** Steps 1-3 of the paper's per-site algorithm.
    @raise Invalid_argument on an out-of-range site. *)

val analyze_site_vectors :
  t -> ?initial:Prob4.t -> int -> (Netlist.Circuit.observation * Prob4.t) list
(** The full four-state vectors at the reachable observation points,
    optionally injecting a partial error vector at the site instead of the
    certain [Prob4.error_site] (used by {!Multi_cycle} to continue errors
    latched in flip-flops).  @raise Invalid_argument in [Naive] mode or on
    an out-of-range site. *)

(** The allocation-free per-site kernel.  A workspace bundles the reusable
    scratch state of the sweep — the four-state vectors as unboxed
    structure-of-arrays float components, epoch-stamped visited/on-path
    marks (bumping a counter replaces clearing an O(n) array per site), a
    flat DFS stack over the circuit's CSR adjacency, and the cone buffer
    sorted by precomputed topological position — so analyzing a site costs
    O(cone · log cone) and allocates only the result.  Results are
    bit-identical to {!analyze_site}, the boxed reference implementation.

    A workspace is mutable single-owner state: share the {e engine} across
    domains freely, but create one workspace per domain. *)
module Workspace : sig
  type ws

  val create : t -> ws
  val engine : ws -> t

  val analyze_site : ws -> int -> site_result
  (** Same results as the reference {!analyze_site} (bit-identical), at
      cone-local cost.  @raise Invalid_argument on an out-of-range site. *)

  val last_vector_defect : ws -> float
  (** Numeric sentinel over the most recent {!analyze_site}: the largest
      [|pa + pā + p1 + p0 − 1|] across the observation nets that site
      reached (NaN if any component is NaN).  Reads the vectors still in
      the workspace, so it costs one pass over the observation list.
      Meaningful only directly after an [analyze_site] call. *)
end

val analyze_sites : t -> int list -> site_result list
(** Batch analysis through a private {!Workspace} (the fast kernel);
    results are bit-identical to mapping {!analyze_site}. *)

val analyze_all : t -> site_result list

val pp_site_result : Netlist.Circuit.t -> site_result Fmt.t
