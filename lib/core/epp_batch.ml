(* Level-synchronous batched EPP sweep.

   The per-site kernel (Epp_engine.Workspace) is cone-local: per site it
   DFS-extracts the forward cone, sorts it, and walks it.  On cone-local
   circuits (parity trees) that is a huge win, but on dense DAGs — where
   every site's cone is most of the circuit — the extraction itself is the
   cost, and a whole-circuit sweep degenerates to O(sites · E).

   This engine inverts the loop: it propagates the four-state vectors for a
   *block* of up to {!max_lanes} sites simultaneously, in one level-order
   pass over the shared forward CSR.

   - The vectors live in four flat float planes, node-major with a lane
     stride: [plane.(node * stride + lane)].  Node-major keeps one gate's
     whole block contiguous, so the lane loops in {!Rules.Lanes} run over
     adjacent unboxed floats.
   - A per-node bitmask ([mask.(v)] bit [l] set iff node [v] is in lane
     [l]'s forward cone) replaces the per-site cone: one O(V + E) forward
     pass seeds and propagates all lanes' cones at once, and a gate whose
     evaluation mask is zero costs one branch for the whole block.
   - Gates are scheduled by ASAP level ({!Netlist.Analysis.level_gates}),
     each level a straight array walk — no per-site DFS, no per-site sort.
   - Lane compaction: {!Rules.Lanes} compacts the live lanes of each gate
     into a dense index list before its inner loops, so blocks that drain
     unevenly (faulted lanes, disjoint cones) don't pay for dead lanes.

   Per lane, the arithmetic is the {!Rules.Lanes} mirror of the per-site
   kernel — results are bit-identical to [Workspace.analyze_site], which
   stays on as the conformance oracle.  A lane whose site would make the
   per-site kernel raise faults individually ([Error] in the block result);
   the rest of the block completes. *)

open Netlist

let max_lanes = 62
(* One OCaml int per node holds the block's cone membership; 63-bit ints
   leave 62 usable lanes with the sign bit untouched. *)

let popcount x =
  let c = ref 0 in
  let m = ref x in
  while !m <> 0 do
    incr c;
    m := !m land (!m - 1)
  done;
  !c

type engine = Epp_engine.t

module Block = struct
  type instruments = {
    timed : bool;
    blocks : Obs.Metrics.counter;  (* epp.batch.blocks *)
    sites : Obs.Metrics.counter;  (* epp.batch.sites *)
    lane_faults : Obs.Metrics.counter;  (* epp.batch.lane_faults *)
    nodes_skipped : Obs.Metrics.counter;  (* epp.batch.nodes_skipped *)
    lane_evals : Obs.Metrics.counter;  (* epp.batch.gate_lane_evals *)
    lanes_hist : Obs.Metrics.histogram;  (* epp.batch.lanes_filled *)
    width_hist : Obs.Metrics.histogram;  (* epp.batch.level_width *)
    t_mask : Obs.Metrics.histogram;  (* epp.batch.phase.mask_seconds *)
    t_propagate : Obs.Metrics.histogram;  (* epp.batch.phase.propagate_seconds *)
    t_collect : Obs.Metrics.histogram;  (* epp.batch.phase.collect_seconds *)
  }

  let instruments () =
    let m = Obs.Hooks.metrics () in
    {
      timed = not (Obs.Metrics.is_null m);
      blocks = Obs.Metrics.counter m "epp.batch.blocks";
      sites = Obs.Metrics.counter m "epp.batch.sites";
      lane_faults = Obs.Metrics.counter m "epp.batch.lane_faults";
      nodes_skipped = Obs.Metrics.counter m "epp.batch.nodes_skipped";
      lane_evals = Obs.Metrics.counter m "epp.batch.gate_lane_evals";
      lanes_hist =
        Obs.Metrics.histogram ~buckets:Obs.Metrics.size_buckets m
          "epp.batch.lanes_filled";
      width_hist =
        Obs.Metrics.histogram ~buckets:Obs.Metrics.size_buckets m
          "epp.batch.level_width";
      t_mask = Obs.Metrics.histogram m "epp.batch.phase.mask_seconds";
      t_propagate = Obs.Metrics.histogram m "epp.batch.phase.propagate_seconds";
      t_collect = Obs.Metrics.histogram m "epp.batch.phase.collect_seconds";
    }

  type ws = {
    engine : engine;
    n : int;  (* node count *)
    stride : int;  (* lane capacity of this block workspace *)
    order : int array;  (* shared topological order (mask pass schedule) *)
    offsets : int array;  (* forward CSR *)
    targets : int array;
    level_gates : int array array;  (* shared level buckets (gate schedule) *)
    kinds : Gate.kind array;  (* per-gate kind, prefetched once *)
    fanin_arrays : int array array;  (* per-gate fanins, shared instances *)
    sp : float array;  (* signal probabilities, shared instance *)
    observations : (Circuit.observation * int) array;
    mask : int array;  (* mask.(v) bit l  <=>  v in lane l's cone *)
    seed : int array;  (* seed.(v) bit l  <=>  v is lane l's site *)
    cone_count : int array;  (* per-lane cone sizes of the current block *)
    faults : exn option array;  (* per-lane first fault of the current block *)
    (* node-major lane-stride planes: plane.(v * stride + l) *)
    pa : float array;
    pa_bar : float array;
    p1 : float array;
    p0 : float array;
    scratch : Rules.Lanes.scratch;
    obs_i : instruments;
    tracer : Obs.Trace.t;
    req_ctx : Obs.Ctx.t option;  (* correlation context for block spans *)
  }

  let engine b = b.engine
  let lanes b = b.stride

  let create ?ctx:req_ctx ?(lanes = max_lanes) engine =
    (match Epp_engine.mode engine with
    | Epp_engine.Polarity -> ()
    | Epp_engine.Naive ->
      invalid_arg "Epp_batch.Block.create: polarity mode only");
    if lanes < 1 || lanes > max_lanes then
      invalid_arg
        (Printf.sprintf "Epp_batch.Block.create: lanes must be in [1, %d]"
           max_lanes);
    let circuit = Epp_engine.circuit engine in
    let ctx = Epp_engine.analysis engine in
    let n = Circuit.node_count circuit in
    let csr = Analysis.csr ctx in
    (* Prefetch gate metadata once: the level loop then never touches the
       boxed node representation. *)
    let kinds = Array.make n Gate.Buf in
    let fanin_arrays = Array.make n [||] in
    Array.iter
      (fun g ->
        match Circuit.node circuit g with
        | Circuit.Gate { kind; fanins } ->
          kinds.(g) <- kind;
          fanin_arrays.(g) <- fanins
        | Circuit.Input | Circuit.Ff _ -> assert false)
      (Analysis.gate_order ctx);
    {
      engine;
      n;
      stride = lanes;
      order = Analysis.order ctx;
      offsets = Csr.offsets csr;
      targets = Csr.targets csr;
      level_gates = Analysis.level_gates ctx;
      kinds;
      fanin_arrays;
      sp = (Epp_engine.signal_probabilities engine).Sigprob.Sp.values;
      observations = Analysis.observations ctx;
      mask = Array.make n 0;
      seed = Array.make n 0;
      cone_count = Array.make lanes 0;
      faults = Array.make lanes None;
      pa = Array.make (n * lanes) 0.0;
      pa_bar = Array.make (n * lanes) 0.0;
      p1 = Array.make (n * lanes) 0.0;
      p0 = Array.make (n * lanes) 0.0;
      scratch = Rules.Lanes.create ~lanes;
      obs_i = instruments ();
      tracer = Obs.Hooks.tracer ();
      req_ctx;
    }

  (* Seed the block's sites and run the one forward cone pass: in
     topological order, every node ORs its lane set into its successors.
     After the pass [mask.(v)] holds exactly the lanes whose site reaches
     [v] — the union of all per-site DFS cones, computed in O(V + E) for
     the whole block.  Per-lane cone sizes fall out of the same walk. *)
  let build_masks b sites =
    let n = b.n in
    Array.fill b.mask 0 n 0;
    Array.fill b.seed 0 n 0;
    let k = Array.length sites in
    Array.fill b.cone_count 0 b.stride 0;
    Array.fill b.faults 0 b.stride None;
    let stride = b.stride in
    for l = 0 to k - 1 do
      let s = sites.(l) in
      let bit = 1 lsl l in
      b.mask.(s) <- b.mask.(s) lor bit;
      b.seed.(s) <- b.seed.(s) lor bit;
      (* the injected error: a certain error, even polarity *)
      let idx = (s * stride) + l in
      b.pa.(idx) <- 1.0;
      b.pa_bar.(idx) <- 0.0;
      b.p1.(idx) <- 0.0;
      b.p0.(idx) <- 0.0
    done;
    let order = b.order and mask = b.mask in
    let offsets = b.offsets and targets = b.targets in
    let cone_count = b.cone_count in
    for i = 0 to n - 1 do
      let v = Array.unsafe_get order i in
      let mv = Array.unsafe_get mask v in
      if mv <> 0 then begin
        for j = Array.unsafe_get offsets v to Array.unsafe_get offsets (v + 1) - 1 do
          let t = Array.unsafe_get targets j in
          Array.unsafe_set mask t (Array.unsafe_get mask t lor mv)
        done;
        if mv land (mv + 1) = 0 then begin
          (* contiguous lane set (the dense common case): count without
             the per-bit ntz walk *)
          let l = ref 0 in
          let m = ref mv in
          while !m <> 0 do
            Array.unsafe_set cone_count !l (Array.unsafe_get cone_count !l + 1);
            incr l;
            m := !m lsr 1
          done
        end
        else begin
          let m = ref mv in
          while !m <> 0 do
            let l = Rules.Lanes.ntz !m in
            Array.unsafe_set cone_count l (Array.unsafe_get cone_count l + 1);
            m := !m land (!m - 1)
          done
        end
      end
    done

  (* Per-lane result assembly, mirroring the per-site kernel's [collect] +
     result construction: observation order, P = Pa + Pā at the observed
     net, P_sensitized = clamp(1 - Π(1 - P)) with the same left fold. *)
  let collect_lane b l site =
    let stride = b.stride in
    let obs = b.observations in
    let bit = 1 lsl l in
    let acc = ref [] in
    for i = Array.length obs - 1 downto 0 do
      let o, net = obs.(i) in
      if b.mask.(net) land bit <> 0 then begin
        let idx = (net * stride) + l in
        let p = b.pa.(idx) +. b.pa_bar.(idx) in
        acc := (o, p) :: !acc
      end
    done;
    let per_observation = !acc in
    let p_sensitized =
      Sigprob.Sp_rules.clamp
        (1.0
        -. List.fold_left
             (fun acc (_, p) -> acc *. (1.0 -. p))
             1.0 per_observation)
    in
    {
      Epp_engine.site;
      p_sensitized;
      per_observation;
      cone_size = b.cone_count.(l);
      reached_outputs = List.length per_observation;
    }

  let run b sites =
    let k = Array.length sites in
    if k > b.stride then
      invalid_arg
        (Printf.sprintf "Epp_batch.Block.run: %d sites exceed block capacity %d"
           k b.stride);
    Array.iter
      (fun s ->
        if s < 0 || s >= b.n then invalid_arg "Epp_batch.Block.run: bad site")
      sites;
    if k = 0 then [||]
    else
      Obs.Trace.span b.tracer ~cat:"epp" ~args:(Obs.Ctx.args_of b.req_ctx)
        "epp.batch.block"
      @@ fun () ->
      let m = b.obs_i in
      let timed = m.timed in
      let t0 = if timed then Obs.Clock.wall_seconds () else 0.0 in
      build_masks b sites;
      let t1 = if timed then Obs.Clock.wall_seconds () else 0.0 in
      let full = (1 lsl k) - 1 in
      let alive = ref full in
      let skipped = ref 0 in
      let evals = ref 0 in
      let sp = b.sp
      and mask = b.mask
      and seed = b.seed
      and stride = b.stride in
      let pa = b.pa and pa_bar = b.pa_bar and p1 = b.p1 and p0 = b.p0 in
      let nlevels = Array.length b.level_gates in
      let lv = ref 0 in
      while !lv < nlevels && !alive <> 0 do
        let bucket = Array.unsafe_get b.level_gates !lv in
        let width = ref 0 in
        for i = 0 to Array.length bucket - 1 do
          let g = Array.unsafe_get bucket i in
          let em =
            Array.unsafe_get mask g land !alive
            land lnot (Array.unsafe_get seed g)
          in
          if em = 0 then incr skipped
          else begin
            incr width;
            let fm =
              Rules.Lanes.propagate b.scratch
                (Array.unsafe_get b.kinds g)
                ~fanins:(Array.unsafe_get b.fanin_arrays g)
                ~mask ~sp ~em ~stride ~pa ~pa_bar ~p1 ~p0 g
            in
            evals := !evals + Rules.Lanes.last_live b.scratch;
            if fm <> 0 then begin
              List.iter
                (fun (l, e) ->
                  if b.faults.(l) = None then b.faults.(l) <- Some e)
                (Rules.Lanes.faults b.scratch);
              alive := !alive land lnot fm;
              Obs.Metrics.add m.lane_faults (popcount fm)
            end
          end
        done;
        Obs.Metrics.observe m.width_hist (float_of_int !width);
        incr lv
      done;
      let t2 = if timed then Obs.Clock.wall_seconds () else 0.0 in
      let results =
        Array.init k (fun l ->
            match b.faults.(l) with
            | Some e -> Error e
            | None -> Ok (collect_lane b l sites.(l)))
      in
      Obs.Metrics.incr m.blocks;
      Obs.Metrics.add m.sites k;
      Obs.Metrics.add m.nodes_skipped !skipped;
      Obs.Metrics.add m.lane_evals !evals;
      Obs.Metrics.observe m.lanes_hist (float_of_int k);
      if timed then begin
        let t3 = Obs.Clock.wall_seconds () in
        Obs.Metrics.observe m.t_mask (t1 -. t0);
        Obs.Metrics.observe m.t_propagate (t2 -. t1);
        Obs.Metrics.observe m.t_collect (t3 -. t2)
      end;
      results

  (* Numeric sentinel for the supervised sweep, the block twin of
     [Workspace.last_vector_defect]: worst four-state sum drift at the
     observation nets lane [l] reached in the last [run], NaN-propagating.
     Reads the vectors still sitting in the planes — no recomputation. *)
  let lane_vector_defect b l =
    let bit = 1 lsl l in
    let stride = b.stride in
    let worst = ref 0.0 in
    let saw_nan = ref false in
    Array.iter
      (fun (_, net) ->
        if b.mask.(net) land bit <> 0 then begin
          let idx = (net * stride) + l in
          let sum =
            b.pa.(idx) +. b.pa_bar.(idx) +. b.p1.(idx) +. b.p0.(idx)
          in
          let d = Float.abs (sum -. 1.0) in
          if Float.is_nan d then saw_nan := true
          else if d > !worst then worst := d
        end)
      b.observations;
    if !saw_nan then Float.nan else !worst
end

(* --- whole-sweep drivers -------------------------------------------------- *)

let raise_first_fault results =
  Array.iter
    (fun r -> match r with Error e -> raise e | Ok _ -> ())
    results

(* Chunk [sites] into blocks and run them in order on one reusable block
   workspace.  Exception semantics mirror the per-site list API: the fault
   of the earliest failing site (input order) is raised.  These drivers
   return whole arrays, so a [deadline] cannot express a partial result —
   expiry between blocks raises {!Obs.Deadline.Expired} instead (callers
   that want partials use {!Supervisor.sweep}). *)
let analyze_site_array ?lanes ?(deadline = Obs.Deadline.never) engine sites =
  let b = Block.create ?lanes engine in
  let total = Array.length sites in
  let w = Block.lanes b in
  let out = Array.make total None in
  let off = ref 0 in
  while !off < total do
    Obs.Deadline.raise_if_expired deadline;
    let k = min w (total - !off) in
    let chunk = Array.sub sites !off k in
    let results = Block.run b chunk in
    raise_first_fault results;
    Array.iteri
      (fun l r ->
        match r with Ok r -> out.(!off + l) <- Some r | Error _ -> ())
      results;
    off := !off + k
  done;
  Array.map (function Some r -> r | None -> assert false) out

let analyze_sites ?lanes ?deadline engine sites =
  let results =
    analyze_site_array ?lanes ?deadline engine (Array.of_list sites)
  in
  Array.to_list results

let analyze_all ?lanes ?deadline engine =
  let n = Circuit.node_count (Epp_engine.circuit engine) in
  Array.to_list
    (analyze_site_array ?lanes ?deadline engine (Array.init n Fun.id))

(* --- density heuristic ----------------------------------------------------

   Batch pays O(V + E) per block no matter how small the cones are; the
   per-site kernel pays O(cone log cone) per site.  The crossover is cone
   density: when the mean cone covers a few percent of the circuit, a block
   of 62 sites re-walks the graph 62 times under the per-site kernel but
   once under batch.  Density is estimated from a few evenly-spaced sample
   cones served by the shared analysis LRU, so the estimate itself reuses
   (and warms) the cache. *)

let density_samples = 8

let density engine =
  let ctx = Epp_engine.analysis engine in
  let n = Circuit.node_count (Epp_engine.circuit engine) in
  if n = 0 then 0.0
  else begin
    let samples = min density_samples n in
    let total = ref 0 in
    for i = 0 to samples - 1 do
      let site = i * n / samples in
      total := !total + Reach.count (Analysis.cone ctx site)
    done;
    let d = float_of_int !total /. float_of_int (samples * n) in
    Obs.Metrics.set_gauge
      (Obs.Metrics.gauge (Obs.Hooks.metrics ()) "epp.batch.density")
      d;
    d
  end

let default_density_threshold = 0.02
let default_min_nodes = 256
let default_min_sites = 8

let should_batch ?(density_threshold = default_density_threshold)
    ?(min_nodes = default_min_nodes) ?(min_sites = default_min_sites) engine
    ~sites =
  (match Epp_engine.mode engine with
  | Epp_engine.Polarity -> true
  | Epp_engine.Naive -> false)
  && Epp_engine.restrict_to_cone engine
  && Circuit.node_count (Epp_engine.circuit engine) >= min_nodes
  && sites >= min_sites
  && density engine >= density_threshold
