(* The degradation ladder: batch -> kernel -> reference -> quarantine.

   The per-site wrapper [analyze_entry] converts every failure mode —
   exceptions out of either engine, NaN components, four-state sums that
   drifted beyond tolerance, probabilities outside [0, 1] — into a typed
   Diag.fault and either a degraded retry or a quarantine record.  It never
   raises, which is what makes the parallel fan-out safe: a worker domain
   can always finish its claim.

   The sentinels are deliberately layered: the kernel rung checks the raw
   four-state vectors (Workspace.last_vector_defect) *and* the published
   result; the reference rung re-checks the result only (the boxed path
   validates its vectors internally via Prob4).  A defect that only a
   sentinel sees — e.g. an sp value mutated to something that still feeds
   finite arithmetic — degrades exactly like a crash does. *)

open Netlist

type entry =
  | Analyzed of { result : Epp_engine.site_result; step : Diag.step }
  | Quarantined of Diag.quarantine

type batch_mode =
  | Auto
  | Always
  | Never

type outcome = {
  entries : (int * entry) list;
  stats : Diag.stats;
  completion : Diag.completion;
}

(* Matches Prob4.normalize's drift bound: anything larger is a rule bug or a
   poisoned input, not rounding dust. *)
let default_tolerance = 1e-6

(* First NaN / out-of-range component of a published result, if any. *)
let result_fault circuit (r : Epp_engine.site_result) =
  let check where value =
    if Float.is_nan value then Some (Diag.Nan { where })
    else if not (value >= 0.0 && value <= 1.0) then
      Some (Diag.Out_of_range { where; value })
    else None
  in
  match check "p_sensitized" r.Epp_engine.p_sensitized with
  | Some f -> Some f
  | None ->
    List.find_map
      (fun (obs, p) ->
        check ("P(" ^ Circuit.observation_name circuit obs ^ ")") p)
      r.Epp_engine.per_observation

let vector_fault ~tolerance defect =
  if Float.is_nan defect then Some (Diag.Nan { where = "four-state vector" })
  else if defect > tolerance then
    Some (Diag.Sum_defect { defect; tolerance })
  else None

(* Cone size for the quarantine record: the pure graph traversal (no float
   arithmetic), so it normally survives whatever poisoned the analysis; when
   even it fails (out-of-range site), record None.  Served from the shared
   cone cache — the quarantined site was just analyzed, so its cone is
   usually still resident. *)
let safe_cone_size circuit site =
  match Analysis.cone (Analysis.get circuit) site with
  | reach -> Some (Reach.count reach)
  | exception _ -> None

let analyze_entry ?ctx ?(tolerance = default_tolerance) ?(prior_faults = [])
    ?kernel ?reference ws site =
  let engine = Epp_engine.Workspace.engine ws in
  let circuit = Epp_engine.circuit engine in
  (* [faults] accumulates newest-first; earlier rungs' faults (the batch
     rung hands its lane fault down here) seed the list so the final
     quarantine record reads in ladder order. *)
  let faults = ref (List.rev prior_faults) in
  let fail step fault =
    faults := (step, fault) :: !faults;
    None
  in
  (* Rung 1: the fast kernel, sentinel-checked. *)
  let kernel_result =
    match
      match kernel with
      | Some f -> (f ws site, None)
      | None ->
        let r = Epp_engine.Workspace.analyze_site ws site in
        (r, Some (Epp_engine.Workspace.last_vector_defect ws))
    with
    | exception e ->
      fail Diag.Kernel (Diag.Exception { exn = Printexc.to_string e })
    | r, defect -> (
      match
        match Option.bind defect (fun d -> vector_fault ~tolerance d) with
        | Some f -> Some f
        | None -> result_fault circuit r
      with
      | Some f -> fail Diag.Kernel f
      | None -> Some r)
  in
  match kernel_result with
  | Some result -> Analyzed { result; step = Diag.Kernel }
  | None -> (
    (match !faults with
    | (step, fault) :: _ ->
      Obs.Log.emit ?ctx
        ~fields:
          [
            ("site", Obs.Json.int site);
            ("from", Obs.Json.String (Diag.step_to_string step));
            ("fault", Obs.Json.String (Diag.fault_to_string fault));
          ]
        Obs.Log.Debug "supervisor.degrade"
    | [] -> ());
    (* Rung 2: the boxed reference path, result-checked. *)
    let reference_result =
      match
        match reference with
        | Some f -> f engine site
        | None -> Epp_engine.analyze_site engine site
      with
      | exception e ->
        fail Diag.Reference (Diag.Exception { exn = Printexc.to_string e })
      | r -> (
        match result_fault circuit r with
        | Some f -> fail Diag.Reference f
        | None -> Some r)
    in
    match reference_result with
    | Some result -> Analyzed { result; step = Diag.Reference }
    | None ->
      (* Rung 3: quarantine and keep sweeping. *)
      let name =
        match Circuit.node_name circuit site with
        | name -> name
        | exception _ -> Printf.sprintf "#%d" site
      in
      let q =
        {
          Diag.site;
          name;
          cone_size = safe_cone_size circuit site;
          faults = List.rev !faults;
        }
      in
      Obs.Log.emit ?ctx
        ~fields:
          [
            ("site", Obs.Json.int site);
            ("name", Obs.Json.String name);
            ( "cone_size",
              match q.Diag.cone_size with
              | Some c -> Obs.Json.int c
              | None -> Obs.Json.Null );
            ( "faults",
              Obs.Json.List
                (List.map
                   (fun (step, fault) ->
                     Obs.Json.String
                       (Diag.step_to_string step ^ ": "
                      ^ Diag.fault_to_string fault))
                   q.Diag.faults) );
          ]
        Obs.Log.Warn "supervisor.quarantine";
      Quarantined q)

let stats_of_entries ?(resumed = 0) entries =
  let batch_ok = ref 0
  and kernel_ok = ref 0
  and degraded = ref 0
  and quarantined = ref 0 in
  List.iter
    (fun (_, entry) ->
      match entry with
      | Analyzed { step = Diag.Batch; _ } -> incr batch_ok
      | Analyzed { step = Diag.Kernel; _ } -> incr kernel_ok
      | Analyzed { step = Diag.Reference; _ } -> incr degraded
      | Quarantined _ -> incr quarantined)
    entries;
  {
    Diag.total = List.length entries;
    batch_ok = !batch_ok;
    kernel_ok = !kernel_ok;
    degraded = !degraded;
    quarantined = !quarantined;
    resumed;
  }

(* --- the batch rung -------------------------------------------------------

   A batched sweep analyzes whole blocks of sites on the Epp_batch engine;
   a lane that faults (or whose published result trips a sentinel) drops
   down to the per-site ladder [analyze_entry] with its batch fault carried
   along, so one bad site degrades alone instead of sinking its block.  The
   per-site kernel workspace is built lazily per domain — a healthy batched
   sweep never constructs it. *)

let can_batch engine =
  match Epp_engine.mode engine with
  | Epp_engine.Polarity -> true
  | Epp_engine.Naive -> false

type batch_ws = {
  block : Epp_batch.Block.ws;
  kernel_ws : Epp_engine.Workspace.ws Lazy.t;
      (* domain-local, so the lazy cell is single-owner *)
}

let analyze_block ?ctx ?tolerance ?kernel ?reference ?batch_run bw sites =
  let engine = Epp_batch.Block.engine bw.block in
  let circuit = Epp_engine.circuit engine in
  let degrade site fault =
    ( site,
      analyze_entry ?ctx ?tolerance ~prior_faults:[ (Diag.Batch, fault) ]
        ?kernel ?reference (Lazy.force bw.kernel_ws) site )
  in
  let real_batch, run =
    match batch_run with
    | Some f -> (false, f)
    | None -> (true, Epp_batch.Block.run)
  in
  match run bw.block sites with
  | exception e ->
    (* a whole-block failure (e.g. a bad site id) degrades every lane *)
    let fault = Diag.Exception { exn = Printexc.to_string e } in
    Array.map (fun site -> degrade site fault) sites
  | results ->
    Array.mapi
      (fun l result ->
        let site = sites.(l) in
        match result with
        | Error e ->
          degrade site (Diag.Exception { exn = Printexc.to_string e })
        | Ok r -> (
          let tolerance =
            Option.value tolerance ~default:default_tolerance
          in
          let fault =
            (* the vector-sum sentinel only runs for the real engine: a
               [batch_run] stub leaves no vectors in the planes *)
            match
              if real_batch then
                vector_fault ~tolerance
                  (Epp_batch.Block.lane_vector_defect bw.block l)
              else None
            with
            | Some f -> Some f
            | None -> result_fault circuit r
          in
          match fault with
          | Some f -> degrade site f
          | None -> (site, Analyzed { result = r; step = Diag.Batch })))
      results

let sweep ?ctx ?domains ?tolerance ?(chunk_size = 1024) ?on_chunk
    ?(batch = Auto) ?batch_run ?kernel ?reference
    ?(deadline = Obs.Deadline.never) engine sites =
  if chunk_size < 1 then invalid_arg "Supervisor.sweep: chunk_size must be >= 1";
  let m = Obs.Hooks.metrics () in
  let tracer = Obs.Hooks.tracer () in
  let c_batch_ok = Obs.Metrics.counter m "supervisor.batch_ok" in
  let c_kernel_ok = Obs.Metrics.counter m "supervisor.kernel_ok" in
  let c_degraded = Obs.Metrics.counter m "supervisor.degraded_to_reference" in
  let c_quarantined = Obs.Metrics.counter m "supervisor.quarantined" in
  let c_chunks = Obs.Metrics.counter m "supervisor.chunks" in
  Obs.Trace.span tracer ~cat:"supervisor" ~args:(Obs.Ctx.args_of ctx)
    "supervisor.sweep"
  @@ fun () ->
  let arr = Array.of_list sites in
  let n = Array.length arr in
  let use_batch =
    match batch with
    | Never -> false
    | Always -> can_batch engine
    | Auto -> can_batch engine && Epp_batch.should_batch engine ~sites:n
  in
  let acc = ref [] in
  let analyzed = ref 0 in
  let pos = ref 0 in
  let expired = ref false in
  (* The deadline is checked at the two dispatch boundaries the sweep owns:
     before starting a chunk (here), and — via [map_array_until] — before
     each task claim inside one.  Either way, entries already finished are
     kept; the sweep never tears a site mid-analysis and never raises on
     expiry. *)
  while !pos < n && not !expired do
    if Obs.Deadline.expired deadline then expired := true
    else begin
      let len = min chunk_size (n - !pos) in
      let chunk = Array.sub arr !pos len in
      let entries =
        Obs.Trace.span tracer ~cat:"supervisor" ~args:(Obs.Ctx.args_of ctx)
          "supervisor.chunk"
        @@ fun () ->
        if use_batch then begin
          (* blocks per domain: each work item is a whole block, so a domain
             claims O(V + E) passes, not per-site crumbs *)
          let lanes = Epp_batch.max_lanes in
          let nblocks = (len + lanes - 1) / lanes in
          let blocks =
            Array.init nblocks (fun i ->
                let off = i * lanes in
                Array.sub chunk off (min lanes (len - off)))
          in
          Parallel.map_array_until ?ctx ?domains ~deadline
            ~workspace:(fun () ->
              {
                block = Epp_batch.Block.create ?ctx engine;
                kernel_ws = lazy (Epp_engine.Workspace.create engine);
              })
            ~f:(fun bw block ->
              analyze_block ?ctx ?tolerance ?kernel ?reference ?batch_run bw
                block)
            blocks
          |> Array.to_list
          |> List.concat_map (function
               | Some block_entries -> Array.to_list block_entries
               | None -> [])
        end
        else
          Parallel.map_array_until ?ctx ?domains ~deadline
            ~workspace:(fun () -> Epp_engine.Workspace.create engine)
            ~f:(fun ws site ->
              (site, analyze_entry ?ctx ?tolerance ?kernel ?reference ws site))
            chunk
          |> Array.to_list |> List.filter_map Fun.id
      in
      let completed = List.length entries in
      if completed < len then expired := true;
      (* Ladder-step accounting happens here, on the calling domain, instead
         of inside the per-site wrapper: one scan per chunk versus a registry
         lookup per site. *)
      Obs.Metrics.incr c_chunks;
      List.iter
        (fun (_, entry) ->
          match entry with
          | Analyzed { step = Diag.Batch; _ } -> Obs.Metrics.incr c_batch_ok
          | Analyzed { step = Diag.Kernel; _ } -> Obs.Metrics.incr c_kernel_ok
          | Analyzed { step = Diag.Reference; _ } -> Obs.Metrics.incr c_degraded
          | Quarantined _ -> Obs.Metrics.incr c_quarantined)
        entries;
      acc := entries :: !acc;
      analyzed := !analyzed + completed;
      pos := !pos + len;
      match on_chunk with
      | Some f -> f ~done_count:!analyzed ~total:n entries
      | None -> ()
    end
  done;
  let entries = List.concat (List.rev !acc) in
  let completion =
    if !expired then begin
      Obs.Metrics.incr (Obs.Metrics.counter m "supervisor.deadline_expired");
      let budget_seconds = Obs.Deadline.budget_seconds deadline in
      Obs.Log.emit ?ctx
        ~fields:
          [
            ("analyzed", Obs.Json.int !analyzed);
            ("remaining", Obs.Json.int (n - !analyzed));
            ("budget_seconds", Obs.Json.Number budget_seconds);
          ]
        Obs.Log.Warn "supervisor.deadline_expired";
      Diag.Deadline_expired
        { analyzed = !analyzed; remaining = n - !analyzed; budget_seconds }
    end
    else Diag.Complete
  in
  { entries; stats = stats_of_entries entries; completion }

let sweep_all ?ctx ?domains ?tolerance ?chunk_size ?on_chunk ?batch ?batch_run
    ?kernel ?reference ?deadline engine =
  let n = Circuit.node_count (Epp_engine.circuit engine) in
  sweep ?ctx ?domains ?tolerance ?chunk_size ?on_chunk ?batch ?batch_run
    ?kernel ?reference ?deadline engine
    (List.init n Fun.id)

let results outcome =
  List.filter_map
    (fun (_, entry) ->
      match entry with
      | Analyzed { result; _ } -> Some result
      | Quarantined _ -> None)
    outcome.entries

let quarantines outcome =
  List.filter_map
    (fun (_, entry) ->
      match entry with
      | Quarantined q -> Some q
      | Analyzed _ -> None)
    outcome.entries
