(** Structural analysis of one error site — step 1 (path construction) and
    step 2 (ordering) of the paper's per-site algorithm, in the paper's own
    vocabulary: on-path signals, on-path gates, off-path signals, reachable
    outputs. *)

type t = {
  site : int;
  on_path : bool array;  (** the site's forward cone (site included) *)
  on_path_gates : int list;
      (** gates with at least one on-path input, in topological order *)
  off_path : int list;
      (** inputs of on-path gates that are not themselves on-path *)
  reached : Netlist.Circuit.observation list;
      (** observation points whose net lies in the cone *)
}

val analyze : Netlist.Circuit.t -> int -> t
(** Pulls the cone and the topological order from the circuit's shared
    {!Netlist.Analysis} context, so repeated analyses reuse one computation;
    [on_path] is the cached cone array — treat it as read-only.
    @raise Invalid_argument on a bad site. *)

val on_path_signal_count : t -> int
val reaches_any_output : t -> bool
val pp : Netlist.Circuit.t -> t Fmt.t
