(** EPP propagation rules: the paper's Table 1 (AND/OR/NOT), extended to
    NAND/NOR/BUF/XOR/XNOR and constants.  The XOR rule is derived by
    enumerating the 4×4 joint polarity states (see the implementation
    header); all rules assume independent inputs, exactly as the paper. *)

val propagate : Netlist.Gate.kind -> Prob4.t array -> Prob4.t
(** Output vector of a gate from its input vectors.
    @raise Netlist.Gate.Arity_error on an arity violation.
    @raise Prob4.Invalid if a rule produces an inconsistent vector (a bug,
    surfaced loudly). *)

val and_rule : Prob4.t array -> Prob4.t
val or_rule : Prob4.t array -> Prob4.t
val xor2 : Prob4.t -> Prob4.t -> Prob4.t

(** Structure-of-arrays evaluation of the same rules for the allocation-free
    EPP kernel: gate inputs are gathered into reusable float buffers, the
    output is written into caller-owned per-node component arrays at a given
    index, and the arithmetic mirrors the boxed rules operation-for-operation
    so results are bit-identical.  Nothing is allocated on the success path. *)
module Soa : sig
  type t = private {
    mutable pa : float array;
    mutable pa_bar : float array;
    mutable p1 : float array;
    mutable p0 : float array;
  }
  (** Gather scratch.  Callers fill slots [0 .. arity-1] of the four arrays
      (element assignment is allowed; the arrays themselves are private). *)

  val create : max_fanin:int -> t
  val capacity : t -> int

  val reserve : t -> int -> unit
  (** Grow the buffers to hold at least [k] inputs (amortized doubling). *)

  val propagate :
    t ->
    Netlist.Gate.kind ->
    arity:int ->
    dst_pa:float array ->
    dst_pa_bar:float array ->
    dst_p1:float array ->
    dst_p0:float array ->
    int ->
    unit
  (** [propagate s kind ~arity ~dst_pa ~dst_pa_bar ~dst_p1 ~dst_p0 v] reads
      slots [0 .. arity-1] of [s] and stores the gate's output vector at
      index [v] of the four destination arrays.  Same exceptions as the boxed
      {!propagate}. *)
end

(** Lane-vectorized evaluation of the same rules for the level-synchronous
    batched engine ({!Epp_batch}): one gate is propagated for a whole block
    of error sites at once.  The four-state vectors live in caller-owned
    node-major float planes with a lane stride ([plane.(node * stride +
    lane)]); a per-node bitmask says which lanes have the node on-path, and
    off-path fanins contribute their signal probability exactly as the
    per-site gather does.  Per lane, the arithmetic mirrors {!Soa}
    operation-for-operation, so batch results are bit-identical to the
    kernel's.  Defects that would make the per-site kernel raise
    ({!Prob4.Invalid} on off-path probabilities or normalize failures,
    {!Netlist.Gate.Arity_error}) instead fault only the offending lanes. *)
module Lanes : sig
  type scratch
  (** Per-evaluator scratch: compacted live-lane indices, accumulator
      arrays, and the fault list of the last {!propagate} call.  Not
      shareable across domains. *)

  val create : lanes:int -> scratch
  (** Scratch for blocks of up to [lanes] sites. *)

  val capacity : scratch -> int

  val faults : scratch -> (int * exn) list
  (** Per-lane faults recorded by the last {!propagate} call, newest first:
      each is [(lane, exn)] with exactly the exception the per-site kernel
      would have raised for that site. *)

  val last_live : scratch -> int
  (** Number of lanes that evaluated the gate rule in the last {!propagate}
      call (the eval mask's population after the off-path prescan), without
      recounting bits — 0 when every lane faulted before rule entry. *)

  val ntz : int -> int
  (** Trailing-zero count of a nonzero word (lowest set lane index). *)

  val propagate :
    scratch ->
    Netlist.Gate.kind ->
    fanins:int array ->
    mask:int array ->
    sp:float array ->
    em:int ->
    stride:int ->
    pa:float array ->
    pa_bar:float array ->
    p1:float array ->
    p0:float array ->
    int ->
    int
  (** [propagate s kind ~fanins ~mask ~sp ~em ~stride ~pa ~pa_bar ~p1 ~p0 g]
      evaluates gate [g] for every lane in the evaluation mask [em] (lanes
      with [g] on-path, still alive, and not seeded at [g]), reading fanin
      vectors from the planes where the fanin is on-path ([mask.(u)] bit
      set) and from [sp.(u)] otherwise, then writes the output at
      [g * stride + lane].  Returns the bitmask of lanes that faulted
      (recorded in {!faults}); their plane slots are left unwritten. *)
end

(** Polarity-blind three-state ablation: [Pa] and [Pā] collapsed into one
    error mass, forcing reconvergent gates to assume error-in implies
    error-out.  Exists to measure what the paper's polarity tracking buys. *)
module Naive : sig
  type t = { pe : float; p1 : float; p0 : float }

  val error_site : t
  val of_sp : float -> t
  val propagate : Netlist.Gate.kind -> t array -> t

  (** Three-state twin of {!Rules.Soa} for the naive ablation kernel. *)
  module Soa : sig
    type scratch = private {
      mutable pe : float array;
      mutable p1 : float array;
      mutable p0 : float array;
    }

    val create : max_fanin:int -> scratch
    val capacity : scratch -> int
    val reserve : scratch -> int -> unit

    val propagate :
      scratch ->
      Netlist.Gate.kind ->
      arity:int ->
      dst_pe:float array ->
      dst_p1:float array ->
      dst_p0:float array ->
      int ->
      unit
  end
end
