(* A deadline is a precomputed absolute expiry on the monotonic clock:
   checking costs one clock read and one compare, with no allocation, so
   engines can afford to poll per work item.  The [never] value uses an
   infinite expiry, making every check a trivially-false compare. *)

type t = {
  until : float;  (* absolute Clock.monotonic_seconds; infinity = never *)
  budget_seconds : float;
}

let never = { until = Float.infinity; budget_seconds = Float.infinity }

let after ~seconds =
  { until = Clock.monotonic_seconds () +. seconds; budget_seconds = seconds }

let of_budget_ms ms = after ~seconds:(ms /. 1000.0)
let is_never t = t.until = Float.infinity
let expired t = (not (is_never t)) && Clock.monotonic_seconds () >= t.until

let remaining t =
  if is_never t then Float.infinity
  else Float.max 0.0 (t.until -. Clock.monotonic_seconds ())

let budget_seconds t = t.budget_seconds

exception Expired of { budget_seconds : float }

let () =
  Printexc.register_printer (function
    | Expired { budget_seconds } ->
      Some (Printf.sprintf "Obs.Deadline.Expired(budget %gs)" budget_seconds)
    | _ -> None)

let raise_if_expired t =
  if expired t then raise (Expired { budget_seconds = t.budget_seconds })
