(** Domain-safe metrics registry: atomic counters, gauges, and fixed-bucket
    histograms, with immutable snapshots, associative merge, and JSON/text
    export.

    The {!null} registry hands out no-op instrument handles, so instrumented
    hot paths cost one pattern match when telemetry is off.  A {!create}d
    registry is safe to write from any number of domains: counters and
    bucket counts are [Atomic] integers, float cells (gauges, histogram
    sums) update by CAS retry.  Registration (obtaining a handle by name)
    takes the registry mutex; operations on the handle never do. *)

type t
(** A registry — {!null} or live. *)

val null : t
(** The default no-op sink: every instrument it returns ignores updates and
    {!snapshot} is empty. *)

val create : unit -> t
val is_null : t -> bool

(** {1 Instruments}

    Registration is idempotent by name: asking twice returns the same
    underlying cell. *)

type counter

val counter : t -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit

type gauge

val gauge : t -> string -> gauge
val set_gauge : gauge -> float -> unit

type histogram

val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] are strictly increasing upper bounds; an implicit +inf bucket
    is appended.  Defaults to {!time_buckets}.
    @raise Invalid_argument on empty/unsorted bounds, or if [name] is
    already registered with different bounds. *)

val observe : histogram -> float -> unit

val time_buckets : float array
(** Exponential seconds buckets, 1 µs .. 60 s. *)

val size_buckets : float array
(** Powers of four, 1 .. 65536 — cone sizes, batch sizes. *)

(** {1 Snapshots} *)

type histogram_snapshot = {
  bounds : float array;
  counts : int array;  (** length [bounds] + 1; the last bucket is +inf *)
  count : int;
  sum : float;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
}

val empty : snapshot

val snapshot : t -> snapshot
(** Safe to take while other domains write: each cell is read atomically,
    but the snapshot is not a global cut across instruments.  After domains
    are joined it is exact. *)

val merge : snapshot -> snapshot -> snapshot
(** Associative and commutative: counters and histograms add, gauges take
    the max.  Union over instrument names.
    @raise Invalid_argument if a histogram appears in both snapshots with
    different bucket bounds. *)

val counter_value : snapshot -> string -> int
(** 0 when absent. *)

val gauge_value : snapshot -> string -> float option
val histogram_value : snapshot -> string -> histogram_snapshot option

val to_json : snapshot -> Json.t
val pp : Format.formatter -> snapshot -> unit
(** One instrument per line: [name value] / [name count=… sum=… mean=…]. *)
