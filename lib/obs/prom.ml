(* Prometheus text exposition (version 0.0.4) from a Metrics.snapshot.

   Counters and gauges map one-to-one; a histogram becomes the standard
   cumulative series: one [_bucket{le="..."}] sample per bound plus the
   [+Inf] bucket, then [_sum] and [_count].  Metric names are sanitized
   (the registry uses dots, Prometheus wants [a-zA-Z0-9_:]).

   [write_file] is atomic (temp + rename) because the intended consumer is
   a scraper or node_exporter textfile collector reading the path on its
   own schedule — it must never observe a half-written exposition.

   [lint] is the OCaml-side well-formedness check the smokes assert: names
   valid and declared exactly once, every sample under a declared family,
   histogram buckets cumulative-monotone with a [+Inf] bucket equal to
   [_count].  It exists so the contract is enforced in CI without a
   Prometheus binary in the container. *)

let sanitize name =
  let b = Bytes.of_string name in
  for i = 0 to Bytes.length b - 1 do
    match Bytes.get b i with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
    | _ -> Bytes.set b i '_'
  done;
  let s = Bytes.to_string b in
  if s = "" then "_"
  else
    match s.[0] with
    | '0' .. '9' -> "_" ^ s
    | _ -> s

let fmt_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let of_snapshot (s : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      Printf.bprintf buf "# TYPE %s counter\n%s %d\n" n n v)
    s.Metrics.counters;
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      Printf.bprintf buf "# TYPE %s gauge\n%s %s\n" n n (fmt_float v))
    s.Metrics.gauges;
  List.iter
    (fun (name, (h : Metrics.histogram_snapshot)) ->
      let n = sanitize name in
      Printf.bprintf buf "# TYPE %s histogram\n" n;
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          cum := !cum + c;
          let le =
            if i < Array.length h.bounds then fmt_float h.bounds.(i)
            else "+Inf"
          in
          Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" n le !cum)
        h.counts;
      Printf.bprintf buf "%s_sum %s\n" n (fmt_float h.sum);
      Printf.bprintf buf "%s_count %d\n" n h.count)
    s.Metrics.histograms;
  Buffer.contents buf

let write_file path snapshot =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (of_snapshot snapshot));
  Sys.rename tmp path

(* --- lint ----------------------------------------------------------------- *)

let valid_name s =
  s <> ""
  && (match s.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let strip_suffix name =
  let try_one suffix =
    if Filename.check_suffix name suffix then
      Some (Filename.chop_suffix name suffix)
    else None
  in
  match try_one "_bucket" with
  | Some base -> Some (base, `Bucket)
  | None -> (
    match try_one "_sum" with
    | Some base -> Some (base, `Sum)
    | None -> (
      match try_one "_count" with
      | Some base -> Some (base, `Count)
      | None -> None))

let parse_value s =
  match float_of_string_opt (String.trim s) with
  | Some v -> Some v
  | None -> (
    match String.trim s with
    | "+Inf" -> Some Float.infinity
    | "-Inf" -> Some Float.neg_infinity
    | "NaN" -> Some Float.nan
    | _ -> None)

(* ["name{labels} value"] or ["name value"] -> (name, labels option, value
   string). *)
let split_sample line =
  match String.index_opt line '{' with
  | Some i -> (
    match String.index_from_opt line i '}' with
    | None -> None
    | Some j ->
      let rest = String.sub line (j + 1) (String.length line - j - 1) in
      Some
        ( String.sub line 0 i,
          Some (String.sub line (i + 1) (j - i - 1)),
          String.trim rest ))
  | None -> (
    match String.index_opt line ' ' with
    | None -> None
    | Some i ->
      Some
        ( String.sub line 0 i,
          None,
          String.trim (String.sub line i (String.length line - i)) ))

let le_of_labels labels =
  (* le="<value>" somewhere in the label body. *)
  let prefix = "le=\"" in
  let rec find from =
    if from + String.length prefix > String.length labels then None
    else if String.sub labels from (String.length prefix) = prefix then
      let start = from + String.length prefix in
      match String.index_from_opt labels start '"' with
      | Some close -> Some (String.sub labels start (close - start))
      | None -> None
    else find (from + 1)
  in
  find 0

let lint text =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let families = Hashtbl.create 32 in
  (* base -> (le, cumulative) list, newest first *)
  let buckets = Hashtbl.create 16 in
  let counts = Hashtbl.create 16 in
  let declare name kind =
    if not (valid_name name) then err "invalid metric name %S" name;
    if Hashtbl.mem families name then
      err "duplicate # TYPE declaration for %s" name
    else Hashtbl.replace families name kind
  in
  let sample line =
    match split_sample line with
    | None -> err "unparseable sample line %S" line
    | Some (name, labels, value) -> (
      if not (valid_name name) then err "invalid sample name %S" name;
      (match parse_value value with
      | Some _ -> ()
      | None -> err "unparseable value %S on %s" value name);
      let histogram_member =
        match strip_suffix name with
        | Some (base, role) when Hashtbl.find_opt families base = Some "histogram"
          ->
          Some (base, role)
        | _ -> None
      in
      match histogram_member with
      | Some (base, `Bucket) -> (
        match Option.bind labels le_of_labels with
        | None -> err "%s_bucket sample without an le label" base
        | Some le ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt buckets base) in
          Hashtbl.replace buckets base ((le, parse_value value) :: prev))
      | Some (base, `Count) -> Hashtbl.replace counts base (parse_value value)
      | Some (_, `Sum) -> ()
      | None -> (
        match Hashtbl.find_opt families name with
        | Some "histogram" ->
          err "bare sample %s under a histogram family" name
        | Some _ -> ()
        | None -> err "sample %s has no # TYPE declaration" name))
  in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line = "" then ()
         else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
           match
             String.split_on_char ' '
               (String.sub line 7 (String.length line - 7))
             |> List.filter (fun s -> s <> "")
           with
           | [ name; kind ] ->
             if kind <> "counter" && kind <> "gauge" && kind <> "histogram"
             then err "unknown metric kind %S for %s" kind name;
             declare name kind
           | _ -> err "malformed TYPE line %S" line
         end
         else if line.[0] = '#' then ()
         else sample line);
  Hashtbl.iter
    (fun base series ->
      let series = List.rev series in
      (match List.rev series with
      | ("+Inf", inf_count) :: _ -> (
        match Hashtbl.find_opt counts base with
        | Some (Some c) when inf_count <> Some c ->
          err "%s: +Inf bucket disagrees with _count" base
        | _ -> ())
      | _ -> err "%s: histogram without a trailing +Inf bucket" base);
      ignore
        (List.fold_left
           (fun prev (le, v) ->
             (match (prev, v) with
             | Some p, Some v when v < p ->
               err "%s: bucket counts not monotone at le=%s" base le
             | _ -> ());
             v)
           None series))
    buckets;
  Hashtbl.iter
    (fun base _ ->
      if
        Hashtbl.find_opt families base = Some "histogram"
        && not (Hashtbl.mem buckets base)
      then err "%s: histogram family without bucket samples" base)
    families;
  match List.rev !errors with
  | [] -> Ok ()
  | errs -> Error errs
