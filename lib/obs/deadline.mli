(** Cooperative time budgets on the monotonic clock.

    A deadline is an absolute point on {!Clock.monotonic_seconds} plus the
    budget it was created with.  Long-running engines accept an optional
    deadline and poll it at natural work boundaries — {!Epp.Supervisor}
    chunk boundaries, {!Epp.Parallel} task dispatch, {!Epp.Epp_batch} block
    boundaries — so an expired budget ends the work {e between} units: every
    finished unit is kept, nothing is torn mid-computation, and the caller
    gets partial results plus a typed outcome instead of a killed process.

    Checking is cheap (one CLOCK_MONOTONIC read and a compare, no
    allocation), so polling once per work item is fine; {!never} short-cuts
    to a single float compare. *)

type t

val never : t
(** The absent budget: {!expired} is always [false], {!remaining} is
    [infinity].  The identity for [?deadline] defaulting. *)

val after : seconds:float -> t
(** [after ~seconds] expires [seconds] from now ([seconds <= 0] is already
    expired — a zero budget deterministically yields zero work, which the
    tests rely on). *)

val of_budget_ms : float -> t
(** [after ~seconds:(ms /. 1000.)] — the service protocol speaks
    milliseconds. *)

val is_never : t -> bool

val expired : t -> bool

val remaining : t -> float
(** Seconds until expiry, clamped to [>= 0]; [infinity] for {!never}. *)

val budget_seconds : t -> float
(** The budget this deadline was created with ([infinity] for {!never}) —
    for diagnostics, not for arithmetic. *)

exception Expired of { budget_seconds : float }
(** Raised by {!raise_if_expired} — the escape hatch for drivers whose
    result type cannot express partial completion (e.g. the sequential
    {!Epp.Epp_batch} sweeps).  Supervised paths never let it out: they
    convert expiry into a typed partial outcome instead. *)

val raise_if_expired : t -> unit
