(** Process-wide telemetry sinks, no-op by default.

    Instrumented code obtains the current sinks here at registration points
    (workspace creation, sweep entry) — install live sinks {e before}
    constructing the pipeline.  Setting a sink from the main domain before
    spawning workers publishes it to them ([Atomic] cells). *)

val metrics : unit -> Metrics.t
(** The current metrics registry ({!Metrics.null} by default). *)

val tracer : unit -> Trace.t
(** The current span collector ({!Trace.null} by default). *)

val set_metrics : Metrics.t -> unit
val set_tracer : Trace.t -> unit

val logger : unit -> Log.t
(** The current structured-log sink ({!Log.null} by default).  Note the
    flight recorder ({!Recorder}) is fed by {!Log.emit} regardless of this
    sink. *)

val set_logger : Log.t -> unit

(** How a {!Progress} meter renders.  [update] receives a fully formatted
    status line (no newline); [finalize] receives the final line exactly
    once.  [None] — the default — makes meters silent. *)
type progress_renderer = {
  update : string -> unit;
  finalize : string -> unit;
}

val progress : unit -> progress_renderer option
val set_progress : progress_renderer option -> unit

val reset : unit -> unit
(** Back to the no-op sinks (tests).  Does not clear the flight recorder —
    use {!Recorder.clear}. *)

val enabled : unit -> bool
(** Whether any live sink (metrics, tracer, logger) is installed. *)
