(** Process-wide telemetry sinks, no-op by default.

    Instrumented code obtains the current sinks here at registration points
    (workspace creation, sweep entry) — install live sinks {e before}
    constructing the pipeline.  Setting a sink from the main domain before
    spawning workers publishes it to them ([Atomic] cells). *)

val metrics : unit -> Metrics.t
(** The current metrics registry ({!Metrics.null} by default). *)

val tracer : unit -> Trace.t
(** The current span collector ({!Trace.null} by default). *)

val set_metrics : Metrics.t -> unit
val set_tracer : Trace.t -> unit

val reset : unit -> unit
(** Back to the no-op sinks (tests). *)

val enabled : unit -> bool
(** Whether any live sink is installed. *)
