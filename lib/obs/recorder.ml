(* The flight recorder: a fixed-capacity ring of recent events, always on.

   This is the post-mortem black box for a daemon that cannot be restarted
   with more verbosity: when something quarantines, misses a deadline, or
   trips the internal-error boundary, the last few hundred events are
   already in memory and can be dumped as JSON on the spot.

   Concurrency design — one writer per domain, lock-free on the hot path:

   - each domain owns exactly one ring, obtained through a [Domain.DLS]
     key, so [record] is a plain array store plus one [Atomic.set] of the
     ring's write head (release ordering publishes the entry to dumpers);
   - rings are pooled: a registry (mutex-protected, touched only at domain
     start/exit and on [dump]) hands a retiring domain's ring to the next
     domain that starts, so memory is bounded by the {e peak concurrent}
     domain count, not the total spawned over the process lifetime — and a
     dead worker's last entries stay dumpable until its ring is reused;
   - [dump] merges every ring.  Reads race benignly with writers: an entry
     slot is an immutable record behind an option, so a dumper sees either
     the old entry or the new one, never a torn value.  The dump is a
     best-effort recent-history view, not a linearizable cut.

   Capacity is fixed (per ring) so the recorder's memory bound is
   [rings * capacity * sizeof entry] — no allocation growth under load. *)

type entry = {
  ts : float;  (* Clock.wall_seconds *)
  level : string;
  event : string;
  request_id : string option;
  domain : int;
  fields : (string * Json.t) list;
}

let capacity = 512

type ring = {
  slots : entry option array;
  head : int Atomic.t;  (* total entries ever written to this ring *)
}

let registry_mutex = Mutex.create ()
let rings : ring list ref = ref []
let free_rings : ring Queue.t = Queue.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let acquire_ring () =
  let r =
    locked (fun () ->
        match Queue.take_opt free_rings with
        | Some r -> r
        | None ->
          let r = { slots = Array.make capacity None; head = Atomic.make 0 } in
          rings := r :: !rings;
          r)
  in
  (* Return the ring to the pool when this domain exits; its contents stay
     dumpable until another domain starts writing over them. *)
  Domain.at_exit (fun () -> locked (fun () -> Queue.add r free_rings));
  r

let key = Domain.DLS.new_key acquire_ring

let record e =
  let r = Domain.DLS.get key in
  let h = Atomic.get r.head in
  r.slots.(h mod capacity) <- Some e;
  Atomic.set r.head (h + 1)

let all_rings () = locked (fun () -> !rings)

let recorded () =
  List.fold_left (fun acc r -> acc + Atomic.get r.head) 0 (all_rings ())

let dump () =
  let collect r =
    let h = Atomic.get r.head in
    let lo = max 0 (h - capacity) in
    List.filter_map
      (fun i -> r.slots.(i mod capacity))
      (List.init (h - lo) (fun k -> lo + k))
  in
  List.concat_map collect (all_rings ())
  |> List.stable_sort (fun a b -> Float.compare a.ts b.ts)

(* Tests only: callers must be quiescent (no concurrent writers). *)
let clear () =
  locked (fun () ->
      List.iter
        (fun r ->
          Array.fill r.slots 0 capacity None;
          Atomic.set r.head 0)
        !rings)

let entry_to_json e =
  let base =
    [
      ("ts", Json.Number e.ts);
      ("level", Json.String e.level);
      ("event", Json.String e.event);
    ]
  in
  let base =
    match e.request_id with
    | None -> base
    | Some id -> base @ [ ("request_id", Json.String id) ]
  in
  Json.Obj (base @ (("domain", Json.int e.domain) :: e.fields))

let to_json () =
  let entries = dump () in
  Json.Obj
    [
      ("capacity", Json.int capacity);
      ("recorded", Json.int (recorded ()));
      ("retained", Json.int (List.length entries));
      ("events", Json.List (List.map entry_to_json entries));
    ]

let dump_to_file path = Json.to_file ~pretty:true path (to_json ())
