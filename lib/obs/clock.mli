(** Wall-clock and CPU-time sources for the telemetry layer. *)

val wall_seconds : unit -> float
(** Elapsed real time ([Unix.gettimeofday]).  The right clock for every
    parallel or I/O-bearing measurement: CPU time sums across domains. *)

val cpu_seconds : unit -> float
(** Processor time of this process ([Sys.time]) — the paper-style
    single-threaded run-time metric.  Do not use for parallel sections. *)

val monotonic_seconds : unit -> float
(** CLOCK_MONOTONIC as seconds from an arbitrary epoch: immune to NTP
    steps, so it is the only clock {!Deadline} budgets may read.  Only
    differences between two readings are meaningful. *)
