(** Wall-clock and CPU-time sources for the telemetry layer. *)

val wall_seconds : unit -> float
(** Elapsed real time ([Unix.gettimeofday]).  The right clock for every
    parallel or I/O-bearing measurement: CPU time sums across domains. *)

val cpu_seconds : unit -> float
(** Processor time of this process ([Sys.time]) — the paper-style
    single-threaded run-time metric.  Do not use for parallel sections. *)
