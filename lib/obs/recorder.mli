(** The flight recorder: a fixed-capacity, always-on ring of recent events,
    dumpable as JSON at any moment — the post-mortem black box for a
    process that cannot be restarted with more verbosity.

    One ring per domain (obtained through domain-local storage), so
    {!record} is lock-free: an array store plus one atomic head bump.
    Rings are pooled across domain lifetimes — memory is bounded by
    {!capacity} entries times the peak concurrent domain count.  {!dump}
    merges all rings sorted by timestamp; it races benignly with writers
    (an entry is read whole or not at all) and is a best-effort recent
    view, not a linearizable cut.

    {!Log.emit} records every event here regardless of the installed log
    sink, so the recorder needs no configuration to be useful. *)

type entry = {
  ts : float;  (** {!Clock.wall_seconds} at emission *)
  level : string;
  event : string;
  request_id : string option;  (** from the emitting {!Ctx}, when any *)
  domain : int;
  fields : (string * Json.t) list;
}

val capacity : int
(** Entries retained per ring (512). *)

val record : entry -> unit
(** Append to the calling domain's ring, overwriting the oldest entry once
    the ring is full.  Lock-free; safe from any domain. *)

val recorded : unit -> int
(** Total entries ever recorded (across all rings), including overwritten
    ones. *)

val dump : unit -> entry list
(** Every retained entry from every ring, sorted by timestamp. *)

val clear : unit -> unit
(** Reset all rings.  Tests only — callers must be quiescent. *)

val entry_to_json : entry -> Json.t

val to_json : unit -> Json.t
(** [{"capacity", "recorded", "retained", "events": [...]}]. *)

val dump_to_file : string -> unit
(** @raise Sys_error on I/O failure. *)
