(** Correlation context: an immutable request/trace identity plus key-value
    baggage, threaded through drivers as an {e explicit} argument.

    There is no global or domain-local "current context" on purpose: the
    sweep fans out across domains, where ambient state either races or
    silently drops the id at every spawn.  Every driver that participates
    takes [?ctx] and passes it down; {!to_args} turns the context into the
    [args] attached to {!Trace} spans and the fields attached to {!Log}
    events, which is how spans from one request join into a single tree in
    Perfetto and how recorder entries correlate across domains. *)

type t

val create : ?baggage:(string * string) list -> ?id:string -> unit -> t
(** A fresh context.  When [id] is omitted a process-unique one is minted
    (constant time, domain-safe); ids are filesystem- and JSON-safe
    ([r-<tag>-<n>]). *)

val id : t -> string
val baggage : t -> (string * string) list
val find : t -> string -> string option

val with_baggage : t -> (string * string) list -> t
(** Same id, extended baggage — refining the context on the way down. *)

val baggage_args : t -> (string * Json.t) list
(** One ["ctx.<key>"] entry per baggage pair. *)

val to_args : t -> (string * Json.t) list
(** [("request_id", id)] plus {!baggage_args} — the span-args /
    log-fields encoding. *)

val args_of : t option -> (string * Json.t) list
(** [to_args] on [Some], [[]] on [None] — the [?ctx] defaulting helper. *)
