(* The process-wide telemetry sinks.

   Instrumented modules read the current sinks at a natural registration
   point (workspace creation, the top of a sweep or a save) and hold the
   handles; the CLIs install live sinks before building the pipeline.  The
   defaults are the no-op sinks, so an uninstrumented process pays only the
   pattern match inside each instrument operation.

   The cells are [Atomic] for publication safety: a sink installed by the
   main domain before spawning workers is visible to them. *)

let metrics_cell = Atomic.make Metrics.null
let tracer_cell = Atomic.make Trace.null

let metrics () = Atomic.get metrics_cell
let tracer () = Atomic.get tracer_cell

let set_metrics m = Atomic.set metrics_cell m
let set_tracer t = Atomic.set tracer_cell t

let reset () =
  Atomic.set metrics_cell Metrics.null;
  Atomic.set tracer_cell Trace.null

let enabled () = not (Metrics.is_null (metrics ()) && Trace.is_null (tracer ()))
