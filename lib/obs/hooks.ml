(* The process-wide telemetry sinks.

   Instrumented modules read the current sinks at a natural registration
   point (workspace creation, the top of a sweep or a save) and hold the
   handles; the CLIs install live sinks before building the pipeline.  The
   defaults are the no-op sinks, so an uninstrumented process pays only the
   pattern match inside each instrument operation.

   The cells are [Atomic] for publication safety: a sink installed by the
   main domain before spawning workers is visible to them.

   The logger cell lives in [Log] (the module that reads it on every
   emit); this module re-exports it so installation stays in one place.
   The progress renderer is a cell here because [Progress] consumes it —
   null means a progress meter renders nothing, which is the default. *)

let metrics_cell = Atomic.make Metrics.null
let tracer_cell = Atomic.make Trace.null

let metrics () = Atomic.get metrics_cell
let tracer () = Atomic.get tracer_cell

let set_metrics m = Atomic.set metrics_cell m
let set_tracer t = Atomic.set tracer_cell t

let logger = Log.sink
let set_logger = Log.set_sink

type progress_renderer = {
  update : string -> unit;
  finalize : string -> unit;
}

let progress_cell : progress_renderer option Atomic.t = Atomic.make None
let progress () = Atomic.get progress_cell
let set_progress r = Atomic.set progress_cell r

let reset () =
  Atomic.set metrics_cell Metrics.null;
  Atomic.set tracer_cell Trace.null;
  Log.set_sink Log.null;
  Atomic.set progress_cell None

let enabled () =
  not
    (Metrics.is_null (metrics ())
    && Trace.is_null (tracer ())
    && Log.is_null (logger ()))
