(* Correlation context: one immutable identity per unit of request-scoped
   work, threaded as an explicit argument.

   There is deliberately no "current context" global and no domain-local
   ambient state: a supervised sweep fans out across domains, and an
   ambient cell would either race (one process-wide cell) or silently drop
   the id at every Domain.spawn (DLS).  Passing [?ctx] down the call chain
   costs one optional argument per driver and makes the data flow visible
   in every signature that participates.

   Ids are process-unique: a per-process tag (pid + wall clock, hashed)
   plus an atomic sequence number.  They are filesystem- and JSON-safe
   ([a-z0-9-]), so they can name recorder dump files directly. *)

type t = {
  id : string;
  baggage : (string * string) list;
}

let counter = Atomic.make 0

(* Computed once at module init on the main domain — no lazy cell to race
   on when worker domains mint ids. *)
let process_tag =
  let h = Hashtbl.hash (Unix.getpid (), Unix.gettimeofday ()) in
  Printf.sprintf "%05x" (h land 0xfffff)

let fresh_id () =
  Printf.sprintf "r-%s-%d" process_tag (Atomic.fetch_and_add counter 1)

let create ?(baggage = []) ?id () =
  let id =
    match id with
    | Some id -> id
    | None -> fresh_id ()
  in
  { id; baggage }

let id t = t.id
let baggage t = t.baggage
let find t key = List.assoc_opt key t.baggage
let with_baggage t kvs = { t with baggage = t.baggage @ kvs }

let baggage_args t =
  List.map (fun (k, v) -> ("ctx." ^ k, Json.String v)) t.baggage

let to_args t = ("request_id", Json.String t.id) :: baggage_args t

let args_of = function
  | None -> []
  | Some t -> to_args t
