(** Structured, leveled, domain-safe logging: JSON-lines over the strict
    {!Json} codec, null by default.

    {!emit} is the one entry point.  Every emitted event is recorded in
    the {!Recorder} ring unconditionally (the flight recorder needs no
    configuration), and additionally written to the installed sink when
    one is live and the event's level clears the sink's minimum.

    Event shape on the wire (one compact object per line):
    [{"ts", "level", "event", "request_id"?, "domain", ...fields}] —
    [request_id] and the ["ctx.*"] baggage fields come from the optional
    {!Ctx} argument, which is how log lines correlate with trace spans and
    recorder dumps. *)

type level =
  | Debug
  | Info
  | Warn
  | Error

val level_to_string : level -> string
val level_of_string : string -> level option

val severity : level -> int
(** [Debug] 0 … [Error] 3. *)

type event = {
  ts : float;  (** {!Clock.wall_seconds} *)
  level : level;
  event : string;  (** dotted event name, e.g. ["supervisor.quarantine"] *)
  request_id : string option;
  domain : int;
  fields : (string * Json.t) list;
}

type t
(** A sink — {!null} or live. *)

val null : t

val create : ?min_level:level -> (event -> unit) -> t
(** A live sink; events below [min_level] (default [Info]) are dropped
    before [write] is called.  [write] must be domain-safe. *)

val is_null : t -> bool

val to_channel : ?min_level:level -> out_channel -> t
(** JSON-lines to [oc], one event per line, mutex-serialized across
    domains. *)

val event_to_json : event -> Json.t

(** {2 The process-wide sink}

    Installed via {!Hooks.set_logger} (which delegates here); null by
    default so an uninstrumented process pays one atomic load and a
    recorder append per event. *)

val sink : unit -> t
val set_sink : t -> unit

val emit : ?ctx:Ctx.t -> ?fields:(string * Json.t) list -> level -> string -> unit
(** [emit ?ctx ?fields level name] — always records into the flight
    recorder, and writes to the installed sink when live and
    [level >= min_level].  Safe from any domain. *)
