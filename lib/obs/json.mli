(** A minimal JSON tree — emitter, strict parser, and accessors.

    Used by the telemetry exporters ({!Metrics.to_json}, {!Trace.to_json}),
    the bench artifacts, and the [@obs-smoke] validator that re-parses what
    the CLI wrote.  Numbers are floats; NaN/infinity emit as [null] (JSON
    cannot represent them). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t
(** [Number (float_of_int n)]. *)

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents two spaces per level. *)

val to_file : ?pretty:bool -> string -> t -> unit
(** [to_file path v] writes [v] plus a trailing newline.
    @raise Sys_error on I/O failure. *)

val parse : string -> (t, string) result
(** Strict RFC-8259 subset: rejects trailing garbage, raw control characters
    in strings, unpaired surrogates.  Never raises. *)

(** {2 Bounded parsing}

    A resident process parsing hostile input must bound what one request can
    cost before touching it: {!parse_with_limits} rejects oversized inputs
    up front and cuts off pathological nesting during the descent, with the
    violation typed ({!Limit}) so the service layer can answer
    [request_too_large] instead of a generic parse error. *)

type limits = {
  max_bytes : int;  (** whole-input byte cap, checked before parsing *)
  max_depth : int;  (** maximum container nesting *)
}

val default_limits : limits
(** Unbounded bytes, depth 512 — {!parse} uses this. *)

type error =
  | Syntax of { offset : int; message : string }
  | Limit of { message : string }  (** a {!limits} violation, not bad JSON *)

val error_message : error -> string

val parse_with_limits : limits -> string -> (t, error) result
(** Never raises. *)

val parse_file : string -> (t, string) result

(** {2 Newline-delimited framing}

    The service wire format: one compact value per line.  Compact emission
    escapes every control character, so ['\n'] is an unambiguous frame
    boundary.  Shared by the serd daemon, the load generator, and the
    session transcripts kept beside the bench artifacts. *)

val emit_line : out_channel -> t -> unit
(** Compact emission plus ['\n'], then [flush] — a frame is visible to the
    peer as soon as the call returns.
    @raise Sys_error on I/O failure. *)

val parse_lines : ?limits:limits -> string -> (t, error) result list
(** Split on ['\n'], drop blank lines, parse each line independently
    (per-frame isolation: one bad line does not poison the rest). *)

val member : string -> t -> t option
(** First binding of the key in an object; [None] on non-objects. *)

val to_list : t -> t list option
val to_number : t -> float option
val to_string_value : t -> string option
