(** A minimal JSON tree — emitter, strict parser, and accessors.

    Used by the telemetry exporters ({!Metrics.to_json}, {!Trace.to_json}),
    the bench artifacts, and the [@obs-smoke] validator that re-parses what
    the CLI wrote.  Numbers are floats; NaN/infinity emit as [null] (JSON
    cannot represent them). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t
(** [Number (float_of_int n)]. *)

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents two spaces per level. *)

val to_file : ?pretty:bool -> string -> t -> unit
(** [to_file path v] writes [v] plus a trailing newline.
    @raise Sys_error on I/O failure. *)

val parse : string -> (t, string) result
(** Strict RFC-8259 subset: rejects trailing garbage, raw control characters
    in strings, unpaired surrogates.  Never raises. *)

val parse_file : string -> (t, string) result

val member : string -> t -> t option
(** First binding of the key in an object; [None] on non-objects. *)

val to_list : t -> t list option
val to_number : t -> float option
val to_string_value : t -> string option
