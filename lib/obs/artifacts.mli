(** Exception-safe telemetry artifact finalization: install live sinks,
    run, and {e always} write the requested artifact files — a run that
    raises (quarantined sweep, failed pipeline) still leaves its metrics
    snapshot, trace, Prometheus exposition, and flight-recorder dump on
    disk for the post-mortem.

    A live {!Metrics} registry is installed when [metrics] or [prom] is
    requested, a live {!Trace} collector when [trace] is; the recorder
    dump needs no installation ({!Recorder} is always on).  Artifact
    writes run under [Fun.protect] and are individually shielded: an
    unwritable path reports through [on_error] (default: one stderr line)
    instead of raising, so it can neither mask the original exception nor
    lose the other artifacts. *)

val with_files :
  ?metrics:string ->
  ?trace:string ->
  ?prom:string ->
  ?recorder_dump:string ->
  ?on_written:(kind:string -> string -> unit) ->
  ?on_error:(kind:string -> string -> string -> unit) ->
  (unit -> 'a) ->
  'a
(** [with_files ?metrics ?trace ?prom ?recorder_dump f] — each argument is
    a destination path; [on_written ~kind path] fires after each
    successful write (the CLIs print a confirmation line). *)
