(* The two clocks of the telemetry layer, named for what they measure.

   Every duration the observability layer publishes is wall-clock time:
   [Sys.time] sums processor time across OCaml 5 domains, so under the
   parallel sweep it reports up to [domains]x the elapsed time — a silently
   corrupt number for any throughput or ETA computation.  CPU seconds remain
   available for the paper-style single-threaded run-time columns, where
   processor time of a single domain is exactly what Table 2 reports. *)

let wall_seconds () = Unix.gettimeofday ()
let cpu_seconds () = Sys.time ()
