(* The clocks of the telemetry layer, named for what they measure.

   Every duration the observability layer publishes is wall-clock time:
   [Sys.time] sums processor time across OCaml 5 domains, so under the
   parallel sweep it reports up to [domains]x the elapsed time — a silently
   corrupt number for any throughput or ETA computation.  CPU seconds remain
   available for the paper-style single-threaded run-time columns, where
   processor time of a single domain is exactly what Table 2 reports.

   Deadlines get their own source: [Unix.gettimeofday] jumps under NTP
   steps, and a clock that jumps backwards turns an expired budget into an
   unexpired one (or the reverse) — fatal for a daemon that promises to
   answer within its budget.  [monotonic_seconds] reads CLOCK_MONOTONIC
   through the bechamel stub, which is immune to wall-clock adjustment.  Its
   epoch is arbitrary: only differences are meaningful. *)

let wall_seconds () = Unix.gettimeofday ()
let cpu_seconds () = Sys.time ()
let monotonic_seconds () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9
