(** Prometheus text exposition (format 0.0.4) derived from a
    {!Metrics.snapshot}, plus an OCaml-side well-formedness lint.

    Counters and gauges map directly; histograms become the standard
    cumulative [_bucket{le="..."}] series (including the [+Inf] bucket)
    with [_sum] and [_count].  Registry names are sanitized to the
    Prometheus charset (dots become underscores). *)

val sanitize : string -> string
(** Map a registry name onto [[a-zA-Z0-9_:]+] (never empty, never
    digit-initial). *)

val of_snapshot : Metrics.snapshot -> string
(** The full exposition: one [# TYPE] line per family, samples after. *)

val write_file : string -> Metrics.snapshot -> unit
(** Atomic write (temp + rename): a scraper reading the path concurrently
    never observes a torn exposition.
    @raise Sys_error on I/O failure. *)

val lint : string -> (unit, string list) result
(** Well-formedness of an exposition: valid metric names, exactly one
    [# TYPE] per family, every sample under a declared family, histogram
    buckets cumulative-monotone ending in a [+Inf] bucket that matches
    [_count].  Used by the smoke benches so the exposition contract is
    CI-enforced without a Prometheus binary. *)
