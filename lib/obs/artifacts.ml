(* Telemetry artifact finalization, exception-safe.

   The CLIs used to carry this logic privately (Cli_common); it lives in
   the library so the failure-path contract — a run that raises still
   writes every artifact it was asked for — is unit-testable.  A partial
   metrics snapshot or trace is exactly what one wants for a post-mortem
   of the run that died.

   Each artifact write is individually shielded: one unwritable path must
   not lose the others.  I/O failures are reported through [on_error]
   (default: a line on stderr) rather than raised, because the artifacts
   are written from a [Fun.protect] finalizer where a raise would mask the
   original exception. *)

let default_on_error ~kind path msg =
  Printf.eprintf "warning: could not write %s to %s: %s\n%!" kind path msg

let with_files ?metrics ?trace ?prom ?recorder_dump
    ?(on_written = fun ~kind:_ _ -> ()) ?(on_error = default_on_error) f =
  let registry =
    if metrics <> None || prom <> None then begin
      let m = Metrics.create () in
      Hooks.set_metrics m;
      Some m
    end
    else None
  in
  let tracer =
    Option.map
      (fun _ ->
        let t = Trace.create () in
        Hooks.set_tracer t;
        t)
      trace
  in
  let write kind path g =
    match g () with
    | () -> on_written ~kind path
    | exception Sys_error msg -> on_error ~kind path msg
  in
  let write_artifacts () =
    (match (metrics, registry) with
    | Some path, Some m ->
      write "metrics snapshot" path (fun () ->
          Json.to_file ~pretty:true path
            (Metrics.to_json (Metrics.snapshot m)))
    | _ -> ());
    (match (prom, registry) with
    | Some path, Some m ->
      write "Prometheus exposition" path (fun () ->
          Prom.write_file path (Metrics.snapshot m))
    | _ -> ());
    (match (trace, tracer) with
    | Some path, Some t ->
      write "trace" path (fun () -> Trace.to_file t path)
    | _ -> ());
    match recorder_dump with
    | Some path ->
      write "flight-recorder dump" path (fun () -> Recorder.dump_to_file path)
    | None -> ()
  in
  Fun.protect ~finally:write_artifacts f
