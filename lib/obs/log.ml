(* Structured, leveled logging over the strict Json codec.

   The seams that used to be silent counters-only — ladder descent, lane
   quarantine, deadline expiry, cache eviction, checkpoint save/resume,
   queue shed — emit typed events through [emit].  Two destinations:

   - the flight recorder, unconditionally: every event lands in the
     calling domain's ring regardless of level or installed sink, so a
     post-mortem dump has the full recent history even when the process
     ran with logging off;
   - the installed sink (null by default, like every Obs hook): a JSON
     line per event at or above the sink's minimum level.

   The sink cell lives here rather than in Hooks because Hooks already
   depends on the sink types it re-exports; Hooks delegates. *)

type level =
  | Debug
  | Info
  | Warn
  | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function
  | Debug -> 0
  | Info -> 1
  | Warn -> 2
  | Error -> 3

type event = {
  ts : float;
  level : level;
  event : string;
  request_id : string option;
  domain : int;
  fields : (string * Json.t) list;
}

type t =
  | Null
  | Live of {
      min_level : level;
      write : event -> unit;
    }

let null = Null
let create ?(min_level = Info) write = Live { min_level; write }

let is_null = function
  | Null -> true
  | Live _ -> false

let event_to_json e =
  let base =
    [
      ("ts", Json.Number e.ts);
      ("level", Json.String (level_to_string e.level));
      ("event", Json.String e.event);
    ]
  in
  let base =
    match e.request_id with
    | None -> base
    | Some id -> base @ [ ("request_id", Json.String id) ]
  in
  Json.Obj (base @ (("domain", Json.int e.domain) :: e.fields))

let to_channel ?min_level oc =
  (* Worker domains log too; one mutex serializes whole lines so two
     events never interleave bytes. *)
  let mutex = Mutex.create () in
  create ?min_level (fun e ->
      Mutex.lock mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock mutex)
        (fun () -> Json.emit_line oc (event_to_json e)))

(* --- the process-wide sink (Hooks delegates here) ------------------------- *)

let sink_cell = Atomic.make Null
let sink () = Atomic.get sink_cell
let set_sink s = Atomic.set sink_cell s

let write t e =
  match t with
  | Null -> ()
  | Live { min_level; write } ->
    if severity e.level >= severity min_level then write e

let emit ?ctx ?(fields = []) level name =
  let e =
    {
      ts = Clock.wall_seconds ();
      level;
      event = name;
      request_id = Option.map Ctx.id ctx;
      domain = (Domain.self () :> int);
      fields =
        (match ctx with
        | None -> fields
        | Some c -> fields @ Ctx.baggage_args c);
    }
  in
  Recorder.record
    {
      Recorder.ts = e.ts;
      level = level_to_string level;
      event = name;
      request_id = e.request_id;
      domain = e.domain;
      fields = e.fields;
    };
  write (sink ()) e
