(* Domain-safe metrics registry.

   Design constraints, in order:

   1. Zero cost when telemetry is off.  The [Null] registry hands out [None]
      handles, so every hot-path operation is one pattern match on an
      immutable option — no atomic traffic, no branches on shared state.
   2. Domain-safe when on.  Counters and histogram buckets are [int
      Atomic.t]; the float-valued cells (gauges, histogram sums) are boxed
      [float Atomic.t] updated by CAS retry — physical equality on the boxed
      read makes the CAS exact.
   3. Instrument registration is rare (per workspace / per call into a
      subsystem), so the name tables sit behind one mutex; operations on an
      obtained handle never touch the registry again.

   Snapshots are plain immutable data, read instrument-by-instrument with
   atomic loads: a snapshot taken while domains are writing is per-cell
   consistent but not a global cut — fine for progress and reporting, and
   the final snapshot (after joins) is exact.  Merge is associative and
   commutative (counters and histograms add, gauges take the max), so
   per-domain snapshots can fold in any order. *)

type hist = {
  bounds : float array;  (* strictly increasing upper bucket bounds *)
  buckets : int Atomic.t array;  (* length bounds + 1; last is +inf *)
  hcount : int Atomic.t;
  hsum : float Atomic.t;
}

type live = {
  mutex : Mutex.t;
  counters : (string, int Atomic.t) Hashtbl.t;
  gauges : (string, float Atomic.t) Hashtbl.t;
  histograms : (string, hist) Hashtbl.t;
}

type t =
  | Null
  | Live of live

let null = Null

let create () =
  Live
    {
      mutex = Mutex.create ();
      counters = Hashtbl.create 32;
      gauges = Hashtbl.create 8;
      histograms = Hashtbl.create 16;
    }

let is_null = function
  | Null -> true
  | Live _ -> false

let with_registry l f =
  Mutex.lock l.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock l.mutex) f

(* --- instruments --------------------------------------------------------- *)

type counter = int Atomic.t option
type gauge = float Atomic.t option
type histogram = hist option

let counter t name =
  match t with
  | Null -> None
  | Live l ->
    Some
      (with_registry l (fun () ->
           match Hashtbl.find_opt l.counters name with
           | Some cell -> cell
           | None ->
             let cell = Atomic.make 0 in
             Hashtbl.replace l.counters name cell;
             cell))

let incr = function
  | None -> ()
  | Some cell -> Atomic.incr cell

let add c n =
  match c with
  | None -> ()
  | Some cell -> ignore (Atomic.fetch_and_add cell n)

let gauge t name =
  match t with
  | Null -> None
  | Live l ->
    Some
      (with_registry l (fun () ->
           match Hashtbl.find_opt l.gauges name with
           | Some cell -> cell
           | None ->
             let cell = Atomic.make 0.0 in
             Hashtbl.replace l.gauges name cell;
             cell))

let set_gauge g x =
  match g with
  | None -> ()
  | Some cell -> Atomic.set cell x

let rec cas_add cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then cas_add cell x

(* Durations below 1 µs round to the first bucket; 60 s+ lands in +inf. *)
let time_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 60.0 |]

(* Powers of four: cone sizes span 1 .. circuit, log-uniform-ish. *)
let size_buckets = [| 1.; 4.; 16.; 64.; 256.; 1024.; 4096.; 16384.; 65536. |]

let validate_bounds name bounds =
  if Array.length bounds = 0 then
    invalid_arg (Printf.sprintf "Metrics.histogram %s: empty bucket bounds" name);
  for i = 1 to Array.length bounds - 1 do
    if not (bounds.(i) > bounds.(i - 1)) then
      invalid_arg
        (Printf.sprintf "Metrics.histogram %s: bounds not strictly increasing"
           name)
  done

let histogram ?(buckets = time_buckets) t name =
  match t with
  | Null -> None
  | Live l ->
    validate_bounds name buckets;
    Some
      (with_registry l (fun () ->
           match Hashtbl.find_opt l.histograms name with
           | Some h ->
             if h.bounds <> buckets then
               invalid_arg
                 (Printf.sprintf
                    "Metrics.histogram %s: registered with different buckets"
                    name);
             h
           | None ->
             let bounds = Array.copy buckets in
             let h =
               {
                 bounds;
                 buckets =
                   Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
                 hcount = Atomic.make 0;
                 hsum = Atomic.make 0.0;
               }
             in
             Hashtbl.replace l.histograms name h;
             h))

let observe h x =
  match h with
  | None -> ()
  | Some h ->
    let k = Array.length h.bounds in
    (* Linear scan: bucket arrays are ~10 entries, the branch predictor wins
       over binary search at this size. *)
    let i = ref 0 in
    while !i < k && x > h.bounds.(!i) do
      Stdlib.incr i
    done;
    Atomic.incr h.buckets.(!i);
    Atomic.incr h.hcount;
    cas_add h.hsum x

(* --- snapshots ----------------------------------------------------------- *)

type histogram_snapshot = {
  bounds : float array;
  counts : int array;  (** length [bounds] + 1; last bucket is +inf *)
  count : int;
  sum : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
}

let empty = { counters = []; gauges = []; histograms = [] }

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot = function
  | Null -> empty
  | Live l ->
    with_registry l (fun () ->
        {
          counters =
            Hashtbl.fold (fun k cell acc -> (k, Atomic.get cell) :: acc)
              l.counters []
            |> List.sort by_name;
          gauges =
            Hashtbl.fold (fun k cell acc -> (k, Atomic.get cell) :: acc)
              l.gauges []
            |> List.sort by_name;
          histograms =
            Hashtbl.fold
              (fun k (h : hist) acc ->
                ( k,
                  {
                    bounds = Array.copy h.bounds;
                    counts = Array.map Atomic.get h.buckets;
                    count = Atomic.get h.hcount;
                    sum = Atomic.get h.hsum;
                  } )
                :: acc)
              l.histograms []
            |> List.sort by_name;
        })

(* Merge two sorted assoc lists, combining values on equal keys. *)
let rec merge_assoc combine a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (ka, va) :: ta, (kb, vb) :: tb ->
    let c = compare ka kb in
    if c < 0 then (ka, va) :: merge_assoc combine ta b
    else if c > 0 then (kb, vb) :: merge_assoc combine a tb
    else (ka, combine ka va vb) :: merge_assoc combine ta tb

let merge_hist name a b =
  if a.bounds <> b.bounds then
    invalid_arg
      (Printf.sprintf "Metrics.merge: histogram %s has mismatched buckets" name);
  {
    bounds = a.bounds;
    counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts;
    count = a.count + b.count;
    sum = a.sum +. b.sum;
  }

let merge a b =
  {
    counters = merge_assoc (fun _ x y -> x + y) a.counters b.counters;
    gauges = merge_assoc (fun _ x y -> Float.max x y) a.gauges b.gauges;
    histograms = merge_assoc merge_hist a.histograms b.histograms;
  }

let counter_value s name =
  Option.value ~default:0 (List.assoc_opt name s.counters)

let gauge_value s name = List.assoc_opt name s.gauges
let histogram_value s name = List.assoc_opt name s.histograms

(* --- export -------------------------------------------------------------- *)

let histogram_to_json h =
  let bucket_fields =
    List.init
      (Array.length h.counts)
      (fun i ->
        let le =
          if i < Array.length h.bounds then Json.Number h.bounds.(i)
          else Json.String "+inf"
        in
        Json.Obj [ ("le", le); ("count", Json.int h.counts.(i)) ])
  in
  Json.Obj
    [
      ("count", Json.int h.count);
      ("sum", Json.Number h.sum);
      ( "mean",
        if h.count = 0 then Json.Null
        else Json.Number (h.sum /. float_of_int h.count) );
      ("buckets", Json.List bucket_fields);
    ]

let to_json s =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Number v)) s.gauges));
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, histogram_to_json h)) s.histograms)
      );
    ]

let pp ppf s =
  let open Format in
  fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> fprintf ppf "%s %d@," k v) s.counters;
  List.iter (fun (k, v) -> fprintf ppf "%s %g@," k v) s.gauges;
  List.iter
    (fun (k, h) ->
      fprintf ppf "%s count=%d sum=%g" k h.count h.sum;
      if h.count > 0 then fprintf ppf " mean=%g" (h.sum /. float_of_int h.count);
      fprintf ppf "@,")
    s.histograms;
  fprintf ppf "@]"
