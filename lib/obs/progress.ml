(* A single-line progress meter for long sweeps: done/total, rate, ETA.

   Rendering is rate-limited (default 5 Hz) and rewrites one line with \r;
   [finish] prints the final state and a newline.  The rate is computed over
   the whole run (wall clock), which converges to the true throughput and
   keeps the ETA stable against chunk-size jitter. *)

type t = {
  out : out_channel;
  label : string;
  total : int;
  min_interval : float;
  started : float;
  mutable last_print : float;
  mutable last_width : int;
  mutable finished : bool;
}

let create ?(out = stderr) ?(min_interval = 0.2) ~label ~total () =
  if total < 0 then invalid_arg "Progress.create: total must be >= 0";
  {
    out;
    label;
    total;
    min_interval;
    started = Clock.wall_seconds ();
    last_print = 0.0;
    last_width = 0;
    finished = false;
  }

let format_eta seconds =
  if Float.is_nan seconds || seconds = Float.infinity then "?"
  else if seconds < 60.0 then Printf.sprintf "%.0fs" seconds
  else if seconds < 3600.0 then
    Printf.sprintf "%dm%02ds"
      (int_of_float seconds / 60)
      (int_of_float seconds mod 60)
  else
    Printf.sprintf "%dh%02dm"
      (int_of_float seconds / 3600)
      (int_of_float seconds mod 3600 / 60)

let render t done_count now =
  let done_count = min done_count t.total in
  let elapsed = Float.max 1e-9 (now -. t.started) in
  let rate = float_of_int done_count /. elapsed in
  let percent =
    if t.total = 0 then 100.0
    else 100.0 *. float_of_int done_count /. float_of_int t.total
  in
  let eta =
    if done_count >= t.total then "0s"
    else if done_count = 0 then "?"
    else format_eta (float_of_int (t.total - done_count) /. rate)
  in
  Printf.sprintf "%s: %d/%d (%.1f%%) | %.0f sites/s | ETA %s" t.label done_count
    t.total percent rate eta

let print_line t line =
  (* Pad with spaces so a shrinking line fully overwrites the previous one. *)
  let pad = max 0 (t.last_width - String.length line) in
  Printf.fprintf t.out "\r%s%s%!" line (String.make pad ' ');
  t.last_width <- String.length line

let report t done_count =
  if not t.finished then begin
    let now = Clock.wall_seconds () in
    if done_count >= t.total || now -. t.last_print >= t.min_interval then begin
      t.last_print <- now;
      print_line t (render t done_count now)
    end
  end

let finish t =
  if not t.finished then begin
    t.finished <- true;
    let now = Clock.wall_seconds () in
    print_line t (render t t.total now);
    Printf.fprintf t.out " (%.1fs)\n%!" (now -. t.started)
  end
