(* A single-line progress meter for long sweeps: done/total, rate, ETA.

   The meter renders plain status lines and hands them to a renderer —
   either one passed explicitly, or whatever Hooks.progress holds at
   creation time.  The default (no renderer installed) is silence: drivers
   can create a meter unconditionally and the uninstrumented cost is a
   clock read per report.  The stderr renderer carries the terminal
   behaviour (\r rewriting, width padding, final newline).

   Rendering is rate-limited (default 5 Hz); [finish] always renders the
   final state.  The rate is computed over the whole run (wall clock),
   which converges to the true throughput and keeps the ETA stable against
   chunk-size jitter. *)

type t = {
  renderer : Hooks.progress_renderer option;
  label : string;
  total : int;
  min_interval : float;
  started : float;
  mutable last_print : float;
  mutable finished : bool;
}

let stderr_renderer ?(out = stderr) () =
  let last_width = ref 0 in
  let print ~final line =
    (* Pad with spaces so a shrinking line fully overwrites the previous
       one. *)
    let pad = max 0 (!last_width - String.length line) in
    Printf.fprintf out "\r%s%s%!" line (String.make pad ' ');
    last_width := String.length line;
    if final then Printf.fprintf out "\n%!"
  in
  {
    Hooks.update = print ~final:false;
    finalize = print ~final:true;
  }

let create ?renderer ?(min_interval = 0.2) ~label ~total () =
  if total < 0 then invalid_arg "Progress.create: total must be >= 0";
  let renderer =
    match renderer with
    | Some _ -> renderer
    | None -> Hooks.progress ()
  in
  {
    renderer;
    label;
    total;
    min_interval;
    started = Clock.wall_seconds ();
    last_print = 0.0;
    finished = false;
  }

let format_eta seconds =
  if Float.is_nan seconds || seconds = Float.infinity then "?"
  else if seconds < 60.0 then Printf.sprintf "%.0fs" seconds
  else if seconds < 3600.0 then
    Printf.sprintf "%dm%02ds"
      (int_of_float seconds / 60)
      (int_of_float seconds mod 60)
  else
    Printf.sprintf "%dh%02dm"
      (int_of_float seconds / 3600)
      (int_of_float seconds mod 3600 / 60)

let render t done_count now =
  let done_count = min done_count t.total in
  let elapsed = Float.max 1e-9 (now -. t.started) in
  let rate = float_of_int done_count /. elapsed in
  let percent =
    if t.total = 0 then 100.0
    else 100.0 *. float_of_int done_count /. float_of_int t.total
  in
  let eta =
    if done_count >= t.total then "0s"
    else if done_count = 0 then "?"
    else format_eta (float_of_int (t.total - done_count) /. rate)
  in
  Printf.sprintf "%s: %d/%d (%.1f%%) | %.0f sites/s | ETA %s" t.label done_count
    t.total percent rate eta

let report t done_count =
  match t.renderer with
  | None -> ()
  | Some r ->
    if not t.finished then begin
      let now = Clock.wall_seconds () in
      if done_count >= t.total || now -. t.last_print >= t.min_interval then begin
        t.last_print <- now;
        r.Hooks.update (render t done_count now)
      end
    end

let finish t =
  if not t.finished then begin
    t.finished <- true;
    match t.renderer with
    | None -> ()
    | Some r ->
      let now = Clock.wall_seconds () in
      r.Hooks.finalize
        (Printf.sprintf "%s (%.1fs)" (render t t.total now) (now -. t.started))
  end
