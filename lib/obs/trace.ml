(* Span tracer emitting Chrome trace-event JSON.

   The output (--trace FILE on the CLIs) loads directly into
   chrome://tracing or https://ui.perfetto.dev: a {"traceEvents": [...]}
   object of B/E duration events plus i instants, with one track (tid) per
   OCaml domain — the work-stealing sweep shows up as parallel lanes.

   Timestamps are wall-clock microseconds relative to the collector's
   creation ([Clock.wall_seconds]; CPU time would compress every parallel
   lane onto one axis).  Recording takes one mutex around a list cons: spans
   mark coarse phases (circuit creation, sp computation, sweep chunks,
   worker lifetimes, checkpoint writes), not per-site events, so contention
   is negligible next to the work inside any span.

   The [Null] collector makes every operation a single pattern match — the
   default when --trace is absent. *)

type event = {
  name : string;
  cat : string;
  ph : char;  (* 'B' begin, 'E' end, 'i' instant, 'M' metadata *)
  ts : float;  (* microseconds since collector creation *)
  tid : int;
  args : (string * Json.t) list;
}

type live = {
  mutex : Mutex.t;
  t0 : float;
  mutable events : event list;  (* newest first *)
  mutable named_tids : int list;
}

type t =
  | Null
  | Live of live

let null = Null

let create () =
  Live
    {
      mutex = Mutex.create ();
      t0 = Clock.wall_seconds ();
      events = [];
      named_tids = [];
    }

let is_null = function
  | Null -> true
  | Live _ -> false

let locked l f =
  Mutex.lock l.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock l.mutex) f

let record l ~name ~cat ~ph ~args =
  let ts = (Clock.wall_seconds () -. l.t0) *. 1e6 in
  let tid = (Domain.self () :> int) in
  locked l (fun () ->
      if not (List.mem tid l.named_tids) then begin
        l.named_tids <- tid :: l.named_tids;
        l.events <-
          {
            name = "thread_name";
            cat = "";
            ph = 'M';
            ts = 0.0;
            tid;
            args = [ ("name", Json.String (Printf.sprintf "domain-%d" tid)) ];
          }
          :: l.events
      end;
      l.events <- { name; cat; ph; ts; tid; args } :: l.events)

let begin_span t ?(cat = "serprop") ?(args = []) name =
  match t with
  | Null -> ()
  | Live l -> record l ~name ~cat ~ph:'B' ~args

let end_span t ?(cat = "serprop") name =
  match t with
  | Null -> ()
  | Live l -> record l ~name ~cat ~ph:'E' ~args:[]

let instant t ?(cat = "serprop") ?(args = []) name =
  match t with
  | Null -> ()
  | Live l -> record l ~name ~cat ~ph:'i' ~args

(* B/E stay balanced even when [f] raises.  [args] ride on the B event —
   Perfetto attaches them to the whole slice, which is how request ids
   from a correlation Ctx label every span of one request. *)
let span t ?cat ?args name f =
  match t with
  | Null -> f ()
  | Live _ ->
    begin_span t ?cat ?args name;
    Fun.protect ~finally:(fun () -> end_span t ?cat name) f

let events = function
  | Null -> []
  | Live l -> locked l (fun () -> List.rev l.events)

let event_to_json e =
  let base =
    [
      ("name", Json.String e.name);
      ("ph", Json.String (String.make 1 e.ph));
      ("ts", Json.Number e.ts);
      ("pid", Json.int 0);
      ("tid", Json.int e.tid);
    ]
  in
  let base = if e.cat = "" then base else base @ [ ("cat", Json.String e.cat) ] in
  let base =
    if e.args = [] then base else base @ [ ("args", Json.Obj e.args) ]
  in
  (* Instants need a scope or some viewers drop them; "t" = thread. *)
  let base = if e.ph = 'i' then base @ [ ("s", Json.String "t") ] else base in
  Json.Obj base

let to_json t =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_to_json (events t)));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_file t path = Json.to_file ~pretty:true path (to_json t)
