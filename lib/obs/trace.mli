(** Span tracer emitting Chrome trace-event JSON.

    A live collector records nestable B/E duration spans and instants, one
    track per OCaml domain, timestamped in wall-clock microseconds; the
    file written by {!to_file} loads into [chrome://tracing] or Perfetto.
    The {!null} collector makes every operation a no-op — the default sink.

    Spans are meant for coarse phases (pipeline stages, sweep chunks,
    worker lifetimes), not per-site events: recording takes a mutex. *)

type t

type event = {
  name : string;
  cat : string;
  ph : char;  (** ['B'] begin, ['E'] end, ['i'] instant, ['M'] metadata *)
  ts : float;  (** microseconds since collector creation *)
  tid : int;  (** OCaml domain id *)
  args : (string * Json.t) list;
}

val null : t
val create : unit -> t
val is_null : t -> bool

val begin_span : t -> ?cat:string -> ?args:(string * Json.t) list -> string -> unit
val end_span : t -> ?cat:string -> string -> unit

val span : t -> ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] brackets [f] in a B/E pair; the E event is emitted even
    when [f] raises.  [args] (e.g. {!Ctx.to_args}) ride on the B event, so
    viewers attach them to the whole slice. *)

val instant : t -> ?cat:string -> ?args:(string * Json.t) list -> string -> unit

val events : t -> event list
(** Chronological.  Includes the [M] thread-name metadata events. *)

val to_json : t -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val to_file : t -> string -> unit
(** @raise Sys_error on I/O failure. *)
