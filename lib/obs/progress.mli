(** Single-line progress meter: done/total, overall rate, ETA.

    Writes [\r]-rewritten lines to [out] (default [stderr]), rate-limited to
    [min_interval] seconds (default 0.2).  Not domain-safe by itself — call
    {!report} from one domain (the sweep's chunk callback already runs on
    the calling domain). *)

type t

val create :
  ?out:out_channel -> ?min_interval:float -> label:string -> total:int -> unit -> t
(** @raise Invalid_argument if [total < 0]. *)

val report : t -> int -> unit
(** [report t done_count] — renders at most every [min_interval] seconds. *)

val finish : t -> unit
(** Render the final state, elapsed time, and a newline.  Idempotent. *)
