(** Single-line progress meter: done/total, overall rate, ETA.

    The meter formats status lines and hands them to a
    {!Hooks.progress_renderer} — the one passed at creation, or whatever
    {!Hooks.progress} holds at that moment.  With no renderer installed
    (the default) the meter is silent, so drivers create one
    unconditionally and the CLIs opt in by installing {!stderr_renderer}
    under their [--progress] flag.

    Rate-limited to [min_interval] seconds (default 0.2); {!finish} always
    renders.  Not domain-safe by itself — call {!report} from one domain
    (the sweep's chunk callback already runs on the calling domain). *)

type t

val stderr_renderer : ?out:out_channel -> unit -> Hooks.progress_renderer
(** The terminal renderer: [\r]-rewritten lines on [out] (default
    [stderr]), padded so a shrinking line fully overwrites its
    predecessor; the final line gets a newline. *)

val create :
  ?renderer:Hooks.progress_renderer ->
  ?min_interval:float ->
  label:string ->
  total:int ->
  unit ->
  t
(** [renderer] defaults to {!Hooks.progress} (captured at creation).
    @raise Invalid_argument if [total < 0]. *)

val report : t -> int -> unit
(** [report t done_count] — renders at most every [min_interval] seconds
    (a report reaching [total] renders regardless). *)

val finish : t -> unit
(** Render the final state and elapsed time.  Idempotent; a no-op only
    when no renderer is installed. *)
