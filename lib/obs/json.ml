(* A minimal JSON tree: enough to emit metrics snapshots and Chrome trace
   files and to validate them back (the @obs-smoke gate re-parses what the
   CLI wrote).  The container has no yojson; this stays a leaf dependency.

   Emission notes: floats print through the shortest of %.12g / %.17g that
   round-trips bit-exactly; integral values print without a fraction; NaN
   and infinities (which JSON cannot represent) print as null rather than
   producing an unparsable file. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let int n = Number (float_of_int n)

(* --- emission ------------------------------------------------------------ *)

let number_to_string x =
  if Float.is_nan x || Float.abs x = Float.infinity then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else
    let short = Printf.sprintf "%.12g" x in
    if float_of_string short = x then short else Printf.sprintf "%.17g" x

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Number x -> Buffer.add_string buf (number_to_string x)
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

(* Pretty printer: objects and lists one element per line, two-space
   indent — the artifact files are meant to be read in a diff. *)
let rec emit_pretty buf indent = function
  | (Null | Bool _ | Number _ | String _) as v -> emit buf v
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    let pad = String.make (indent + 2) ' ' in
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        emit_pretty buf (indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    let pad = String.make (indent + 2) ' ' in
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        escape_to buf k;
        Buffer.add_string buf ": ";
        emit_pretty buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf '}'

let to_string ?(pretty = false) v =
  let buf = Buffer.create 1024 in
  if pretty then emit_pretty buf 0 v else emit buf v;
  Buffer.contents buf

let to_file ?pretty path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string ?pretty v);
      output_char oc '\n')

(* --- framing --------------------------------------------------------------

   Newline-delimited JSON is the service wire format (one compact value per
   line) — shared by the serd daemon, the load generator, and the session
   transcripts the bench artifacts keep, instead of three ad-hoc framings.
   Compact emission never contains a raw newline (strings escape control
   characters), so '\n' is an unambiguous frame boundary. *)

let emit_line oc v =
  output_string oc (to_string v);
  output_char oc '\n';
  flush oc

(* --- parsing ------------------------------------------------------------- *)

type limits = {
  max_bytes : int;
  max_depth : int;
}

(* Depth 512 nests deeper than any sane payload while keeping the
   recursive-descent parser far from stack exhaustion on hostile input. *)
let default_limits = { max_bytes = max_int; max_depth = 512 }

type error =
  | Syntax of { offset : int; message : string }
  | Limit of { message : string }

let error_message = function
  | Syntax { offset; message } -> Printf.sprintf "at offset %d: %s" offset message
  | Limit { message } -> message

exception Fail of int * string
exception Fail_limit of string

let parse_with_limits limits s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  (* Encode a Unicode scalar value as UTF-8. *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let hi = hex4 () in
          if hi >= 0xD800 && hi <= 0xDBFF then begin
            (* surrogate pair *)
            if
              !pos + 2 <= n
              && s.[!pos] = '\\'
              && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = hex4 () in
              if lo < 0xDC00 || lo > 0xDFFF then fail "invalid low surrogate";
              add_utf8 buf
                (0x10000 + (((hi - 0xD800) lsl 10) lor (lo - 0xDC00)))
            end
            else fail "unpaired high surrogate"
          end
          else if hi >= 0xDC00 && hi <= 0xDFFF then fail "unpaired low surrogate"
          else add_utf8 buf hi
        | _ -> fail (Printf.sprintf "invalid escape \\%c" e));
        loop ())
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    (* RFC 8259 int part: a single 0, or a nonzero digit then digits —
       no leading zeros. *)
    let d0 = !pos in
    digits ();
    if s.[d0] = '0' && !pos > d0 + 1 then fail "leading zero";
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with
      | Some ('+' | '-') -> advance ()
      | _ -> ());
      digits ()
    | _ -> ());
    Number (float_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value depth =
    skip_ws ();
    if depth > limits.max_depth then
      raise
        (Fail_limit
           (Printf.sprintf "nesting exceeds the %d-level depth limit"
              limits.max_depth));
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  if n > limits.max_bytes then
    Error
      (Limit
         {
           message =
             Printf.sprintf "input is %d bytes, over the %d-byte limit" n
               limits.max_bytes;
         })
  else
    match
      let v = parse_value 0 in
      skip_ws ();
      if !pos <> n then fail "trailing garbage after value";
      v
    with
    | v -> Ok v
    | exception Fail (p, msg) -> Error (Syntax { offset = p; message = msg })
    | exception Fail_limit message -> Error (Limit { message })

let parse s =
  Result.map_error error_message (parse_with_limits default_limits s)

let parse_lines ?(limits = default_limits) s =
  String.split_on_char '\n' s
  |> List.filter (fun line -> String.trim line <> "")
  |> List.map (parse_with_limits limits)

let parse_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    parse contents

(* --- accessors ----------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function
  | List items -> Some items
  | _ -> None

let to_number = function
  | Number x -> Some x
  | _ -> None

let to_string_value = function
  | String s -> Some s
  | _ -> None
