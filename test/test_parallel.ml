(* Tests for multicore site analysis. *)

open Helpers
open Netlist

let results_equal a b =
  List.for_all2
    (fun (x : Epp.Epp_engine.site_result) (y : Epp.Epp_engine.site_result) ->
      x.Epp.Epp_engine.site = y.Epp.Epp_engine.site
      && Float.abs (x.Epp.Epp_engine.p_sensitized -. y.Epp.Epp_engine.p_sensitized) < 1e-15
      && x.Epp.Epp_engine.cone_size = y.Epp.Epp_engine.cone_size)
    a b

let test_matches_sequential () =
  let c = Circuit_gen.Random_dag.generate ~seed:13 Circuit_gen.Profiles.s344 in
  let engine = Epp.Epp_engine.create c in
  let sequential = Epp.Epp_engine.analyze_all engine in
  let parallel = Epp.Parallel.analyze_all ~domains:4 engine in
  check_int "same length" (List.length sequential) (List.length parallel);
  check_bool "identical results in order" true (results_equal sequential parallel)

let test_single_domain_degenerates () =
  let c = fig1 () in
  let engine = Epp.Epp_engine.create c in
  let sites = [ 5; 6; 7 ] in
  check_bool "same as sequential" true
    (results_equal
       (Epp.Epp_engine.analyze_sites engine sites)
       (Epp.Parallel.analyze_sites ~domains:1 engine sites))

let test_empty_sites () =
  let c = fig1 () in
  let engine = Epp.Epp_engine.create c in
  check_int "empty" 0 (List.length (Epp.Parallel.analyze_sites ~domains:4 engine []))

let test_small_batch_falls_back () =
  let c = fig1 () in
  let engine = Epp.Epp_engine.create c in
  let r = Epp.Parallel.analyze_sites ~domains:8 engine [ 0; 1 ] in
  check_int "both analyzed" 2 (List.length r)

let test_domain_validation () =
  let c = fig1 () in
  let engine = Epp.Epp_engine.create c in
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Parallel.analyze_sites: domains must be >= 1") (fun () ->
      ignore (Epp.Parallel.analyze_sites ~domains:0 engine [ 0 ]))

let test_default_domains_positive () =
  check_bool "at least one" true (Epp.Parallel.default_domains () >= 1)

(* A raising site must not leak unjoined domains or hang the sweep: the
   exception propagates to the caller after every helper is joined, and the
   module stays usable afterwards. *)
let test_raising_site () =
  let c = Circuit_gen.Random_dag.generate ~seed:7 Circuit_gen.Profiles.s344 in
  let engine = Epp.Epp_engine.create c in
  let n = Circuit.node_count c in
  let sites = List.init 64 (fun i -> if i = 40 then n + 1000 else i mod n) in
  Alcotest.check_raises "bad site raises out of the parallel sweep"
    (Invalid_argument "Epp_engine.Workspace.analyze_site: bad site") (fun () ->
      ignore (Epp.Parallel.analyze_sites ~domains:4 engine sites));
  (* No deadlock / leaked-domain fallout: an immediate clean sweep works. *)
  check_int "sweep still works after the failure" n
    (List.length (Epp.Parallel.analyze_all ~domains:4 engine))

(* The propagated exception is the lowest failing input index, regardless of
   which domain hit which site first. *)
let test_first_failure_deterministic () =
  let items = Array.init 200 Fun.id in
  let f () i = if i mod 31 = 17 then failwith (string_of_int i) else i in
  for _ = 1 to 10 do
    match
      Epp.Parallel.map_array ~domains:4 ~workspace:(fun () -> ()) ~f items
    with
    | _ -> Alcotest.fail "expected a failure"
    | exception Failure msg -> check_string "lowest failing index" "17" msg
  done

let test_map_array_order () =
  let items = Array.init 100 Fun.id in
  let r =
    Epp.Parallel.map_array ~domains:4 ~workspace:(fun () -> ()) ~f:(fun () i -> i * i) items
  in
  check_bool "results in input order" true
    (Array.for_all Fun.id (Array.mapi (fun i x -> x = i * i) r))

let test_map_array_empty () =
  check_int "empty input" 0
    (Array.length
       (Epp.Parallel.map_array ~domains:4 ~workspace:(fun () -> ()) ~f:(fun () i -> i) [||]))

(* map_array_until: the default deadline fills every slot identically to
   map_array; an already-expired one starts nothing — and in neither case
   is finished work dropped. *)
let test_map_array_until_never () =
  let items = Array.init 50 Fun.id in
  let r =
    Epp.Parallel.map_array_until ~domains:4
      ~workspace:(fun () -> ())
      ~f:(fun () i -> i + 1)
      items
  in
  check_bool "every slot filled" true
    (Array.for_all Option.is_some r);
  check_bool "results in input order" true
    (Array.for_all Fun.id (Array.mapi (fun i x -> x = Some (i + 1)) r))

let test_map_array_until_expired () =
  let calls = Atomic.make 0 in
  let f () i =
    Atomic.incr calls;
    i
  in
  let items = Array.init 50 Fun.id in
  List.iter
    (fun domains ->
      let r =
        Epp.Parallel.map_array_until ~domains
          ~deadline:(Obs.Deadline.of_budget_ms 0.0)
          ~workspace:(fun () -> ())
          ~f items
      in
      check_bool "nothing starts on an expired budget" true
        (Array.for_all Option.is_none r))
    [ 1; 4 ];
  check_int "f never ran" 0 (Atomic.get calls)

let prop_order_preserved =
  qtest ~count:10 ~name:"results come back in input order" seed_arbitrary (fun seed ->
      let c = random_small_dag ~seed in
      let engine = Epp.Epp_engine.create ~sp:(Sigprob.Sp_topological.compute c) c in
      let rng = Rng.create ~seed in
      let sites =
        List.init 12 (fun _ -> Rng.int rng ~bound:(Circuit.node_count c))
      in
      let results = Epp.Parallel.analyze_sites ~domains:3 engine sites in
      List.for_all2
        (fun site (r : Epp.Epp_engine.site_result) -> r.Epp.Epp_engine.site = site)
        sites results)

let () =
  Alcotest.run "parallel"
    [
      ( "domains",
        [
          Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
          Alcotest.test_case "single domain degenerates" `Quick test_single_domain_degenerates;
          Alcotest.test_case "empty sites" `Quick test_empty_sites;
          Alcotest.test_case "small batch falls back" `Quick test_small_batch_falls_back;
          Alcotest.test_case "domain validation" `Quick test_domain_validation;
          Alcotest.test_case "default domains" `Quick test_default_domains_positive;
          prop_order_preserved;
        ] );
      ( "exception safety",
        [
          Alcotest.test_case "raising site" `Quick test_raising_site;
          Alcotest.test_case "first failure deterministic" `Quick
            test_first_failure_deterministic;
          Alcotest.test_case "map_array order" `Quick test_map_array_order;
          Alcotest.test_case "map_array empty" `Quick test_map_array_empty;
          Alcotest.test_case "map_array_until default" `Quick
            test_map_array_until_never;
          Alcotest.test_case "map_array_until expired" `Quick
            test_map_array_until_expired;
        ] );
    ]
