(* Tests for the netlist rewriting passes: constant propagation, structural
   hashing, sweeping, and TMR hardening.  The master property throughout is
   behavioural equivalence at the observation points, checked by shared-name
   random simulation. *)

open Helpers
open Netlist

(* Same-named inputs get the same random words; observation values must
   agree.  FF states are seeded identically by name as well. *)
let equivalent_behaviour c1 c2 =
  let cs1 = Logic_sim.Sim.compile c1 and cs2 = Logic_sim.Sim.compile c2 in
  let rng = Rng.create ~seed:424242 in
  let draws = Hashtbl.create 32 in
  let assign c v =
    let name = Circuit.node_name c v in
    match Hashtbl.find_opt draws name with
    | Some w -> w
    | None ->
      let w = Rng.word rng in
      Hashtbl.replace draws name w;
      w
  in
  let v1 = Logic_sim.Sim.eval_words cs1 ~assign:(assign c1) in
  let v2 = Logic_sim.Sim.eval_words cs2 ~assign:(assign c2) in
  (* Primary outputs compare positionally (a pass may rename the driving
     net); flip-flop data inputs compare by the FF's stable name. *)
  let po_words c values = List.map (fun v -> values.(v)) (Circuit.outputs c) in
  let ff_words c values =
    List.map
      (fun ff ->
        match Circuit.node c ff with
        | Circuit.Ff { data } -> (Circuit.node_name c ff, values.(data))
        | Circuit.Input | Circuit.Gate _ -> assert false)
      (Circuit.ffs c)
    |> List.sort compare
  in
  po_words c1 v1 = po_words c2 v2 && ff_words c1 v1 = ff_words c2 v2

(* --- constant propagation ------------------------------------------------------ *)

let with_constants () =
  let b = Builder.create ~name:"consts" () in
  List.iter (Builder.add_input b) [ "a"; "b" ];
  Builder.add_gate b ~output:"zero" ~kind:Gate.Const0 [];
  Builder.add_gate b ~output:"one" ~kind:Gate.Const1 [];
  Builder.add_gate b ~output:"dead_and" ~kind:Gate.And [ "a"; "zero" ];
  Builder.add_gate b ~output:"pass_and" ~kind:Gate.And [ "a"; "one" ];
  Builder.add_gate b ~output:"toggle" ~kind:Gate.Xor [ "b"; "one" ];
  Builder.add_gate b ~output:"y" ~kind:Gate.Or [ "dead_and"; "pass_and"; "toggle" ];
  Builder.add_output b "y";
  Builder.freeze b

let test_constant_folding_shrinks () =
  let c = with_constants () in
  let c' = Transform.propagate_constants c in
  (* y = OR(0, a, NOT b) -> gates: the NOT and the OR (2); constants and
     pass-throughs vanish. *)
  check_bool "fewer gates" true (Circuit.gate_count c' < Circuit.gate_count c);
  check_bool "equivalent" true (equivalent_behaviour c c');
  check_bool "no constants left" true
    (List.for_all
       (fun v ->
         match Circuit.kind_of c' v with
         | Some Gate.Const0 | Some Gate.Const1 -> false
         | _ -> true)
       (List.init (Circuit.node_count c') Fun.id))

let test_constant_folding_to_pure_constant () =
  (* y = AND(a, 0): the output itself becomes constant 0. *)
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_gate b ~output:"zero" ~kind:Gate.Const0 [];
  Builder.add_gate b ~output:"y" ~kind:Gate.And [ "a"; "zero" ];
  Builder.add_output b "y";
  let c = Builder.freeze b in
  let c' = Transform.propagate_constants c in
  check_bool "equivalent" true (equivalent_behaviour c c');
  (* The PO must now be driven by a materialized constant. *)
  let out = List.hd (Circuit.outputs c') in
  Alcotest.(check (option bool))
    "output is const0"
    (Some true)
    (Option.map (fun k -> k = Gate.Const0) (Circuit.kind_of c' out))

let test_nand_with_zero_is_one () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_gate b ~output:"zero" ~kind:Gate.Const0 [];
  Builder.add_gate b ~output:"y" ~kind:Gate.Nand [ "a"; "zero" ];
  Builder.add_output b "y";
  let c = Builder.freeze b in
  let c' = Transform.propagate_constants c in
  let out = List.hd (Circuit.outputs c') in
  Alcotest.(check (option bool))
    "output is const1"
    (Some true)
    (Option.map (fun k -> k = Gate.Const1) (Circuit.kind_of c' out));
  check_bool "equivalent" true (equivalent_behaviour c c')

let test_xnor_parity_folding () =
  (* XNOR(b, 1) = b; XNOR(b, 0) = NOT b. *)
  let build kind const =
    let b = Builder.create () in
    Builder.add_input b "b";
    Builder.add_gate b ~output:"k" ~kind:const [];
    Builder.add_gate b ~output:"y" ~kind [ "b"; "k" ];
    Builder.add_output b "y";
    Builder.freeze b
  in
  let c1 = build Gate.Xnor Gate.Const1 in
  check_bool "XNOR(b,1) = b" true (equivalent_behaviour c1 (Transform.propagate_constants c1));
  let c2 = build Gate.Xnor Gate.Const0 in
  check_bool "XNOR(b,0) = NOT b" true (equivalent_behaviour c2 (Transform.propagate_constants c2))

let prop_constant_folding_preserves_behaviour =
  qtest ~count:30 ~name:"constant propagation preserves behaviour" seed_arbitrary (fun seed ->
      let c = random_small_dag ~seed in
      equivalent_behaviour c (Transform.propagate_constants c))

(* --- structural hashing ---------------------------------------------------------- *)

let test_merge_duplicates () =
  let b = Builder.create () in
  List.iter (Builder.add_input b) [ "a"; "b" ];
  Builder.add_gate b ~output:"g1" ~kind:Gate.And [ "a"; "b" ];
  Builder.add_gate b ~output:"g2" ~kind:Gate.And [ "b"; "a" ]; (* commutative duplicate *)
  Builder.add_gate b ~output:"g3" ~kind:Gate.Nand [ "a"; "b" ]; (* different kind: kept *)
  Builder.add_gate b ~output:"y" ~kind:Gate.Xor [ "g1"; "g2" ];
  Builder.add_gate b ~output:"z" ~kind:Gate.Or [ "y"; "g3" ];
  Builder.add_output b "z";
  let c = Builder.freeze b in
  let c' = Transform.merge_duplicates c in
  check_bool "equivalent" true (equivalent_behaviour c c');
  (* g2 merges into g1, so y = XOR(g1, g1)... which is still a gate here
     (merge does not fold); the gate count drops by exactly one. *)
  check_int "one gate merged" (Circuit.gate_count c - 1) (Circuit.gate_count c')

let test_merge_cascades () =
  (* Two identical subtrees must collapse completely. *)
  let b = Builder.create () in
  List.iter (Builder.add_input b) [ "a"; "b" ];
  Builder.add_gate b ~output:"l1" ~kind:Gate.And [ "a"; "b" ];
  Builder.add_gate b ~output:"l2" ~kind:Gate.Not [ "l1" ];
  Builder.add_gate b ~output:"r1" ~kind:Gate.And [ "b"; "a" ];
  Builder.add_gate b ~output:"r2" ~kind:Gate.Not [ "r1" ];
  Builder.add_gate b ~output:"y" ~kind:Gate.Or [ "l2"; "r2" ];
  Builder.add_output b "y";
  let c = Builder.freeze b in
  let c' = Transform.merge_duplicates c in
  check_int "both levels merged" 3 (Circuit.gate_count c');
  check_bool "equivalent" true (equivalent_behaviour c c')

let prop_merge_preserves_behaviour =
  qtest ~count:30 ~name:"structural hashing preserves behaviour" seed_arbitrary (fun seed ->
      let c = random_small_dag ~seed in
      equivalent_behaviour c (Transform.merge_duplicates c))

(* --- sweeping ---------------------------------------------------------------------- *)

let test_sweep_removes_dangling () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_gate b ~output:"y" ~kind:Gate.Not [ "a" ];
  Builder.add_gate b ~output:"dead1" ~kind:Gate.Buf [ "a" ];
  Builder.add_gate b ~output:"dead2" ~kind:Gate.Not [ "dead1" ];
  Builder.add_output b "y";
  let c = Builder.freeze b in
  let c' = Transform.sweep_unobservable c in
  check_int "only y remains" 1 (Circuit.gate_count c');
  check_bool "equivalent" true (equivalent_behaviour c c')

let test_sweep_keeps_ff_cones () =
  (* Logic feeding only a flip-flop's data input is observable. *)
  let c = shift_register () in
  let c' = Transform.sweep_unobservable c in
  check_int "nothing removed" (Circuit.gate_count c) (Circuit.gate_count c');
  check_bool "equivalent" true (equivalent_behaviour c c')

let prop_optimize_preserves_behaviour =
  qtest ~count:30 ~name:"full optimize pipeline preserves behaviour" seed_arbitrary
    (fun seed ->
      let c = random_small_dag ~seed in
      equivalent_behaviour c (Transform.optimize c))

let test_optimize_s27_is_stable () =
  (* s27 is already clean: optimize must not change its size. *)
  let c = Circuit_gen.Embedded.s27 () in
  let c' = Transform.optimize c in
  check_int "same gates" (Circuit.gate_count c) (Circuit.gate_count c');
  check_bool "equivalent" true (equivalent_behaviour c c')

(* --- TMR ---------------------------------------------------------------------------- *)

let test_tmr_structure () =
  let c = fig1 () in
  let g = Circuit.find c "G" in
  let c' = Transform.triplicate c ~nodes:[ g ] in
  (* +2 replicas +4 voter gates *)
  check_int "six extra gates" (Circuit.gate_count c + 6) (Circuit.gate_count c');
  check_bool "replica exists" true (Circuit.find_opt c' "G#tmr1" <> None);
  check_bool "voter exists" true (Circuit.find_opt c' "G#vote" <> None);
  check_bool "equivalent" true (equivalent_behaviour c c')

let test_tmr_masks_replica_errors_exactly () =
  (* The BDD oracle sees perfect masking: P_sens of every replica is 0. *)
  let c = fig1 () in
  let g = Circuit.find c "G" in
  let c' = Transform.triplicate c ~nodes:[ g ] in
  let cb = Circuit_bdd.build c' in
  List.iter
    (fun name ->
      let r = Circuit_bdd.epp_exact cb (Circuit.find c' name) in
      check_float (name ^ " fully masked") 0.0 r.Circuit_bdd.p_sensitized)
    [ "G"; "G#tmr1"; "G#tmr2" ]

let test_tmr_epp_overestimates_residual () =
  (* The analytical EPP treats the voter's side inputs as independent, so
     it reports a positive residual where the truth is 0 — the documented
     limit of the independence assumption, surfaced by this transform. *)
  let c = fig1 () in
  let g = Circuit.find c "G" in
  let c' = Transform.triplicate c ~nodes:[ g ] in
  let engine = Epp.Epp_engine.create c' in
  let r = Epp.Epp_engine.analyze_site engine (Circuit.find c' "G") in
  check_bool "positive residual" true (r.Epp.Epp_engine.p_sensitized > 0.0)

let test_tmr_reduces_exact_ser () =
  (* Hardening the top FIT contributor must reduce the exact (BDD-based)
     sensitization summed over the original gates. *)
  let c = fig1 () in
  let cb = Circuit_bdd.build c in
  let total_before =
    List.fold_left
      (fun acc v ->
        if Circuit.is_gate c v then
          acc +. (Circuit_bdd.epp_exact cb v).Circuit_bdd.p_sensitized
        else acc)
      0.0
      (List.init (Circuit.node_count c) Fun.id)
  in
  let g = Circuit.find c "D" in
  let c' = Transform.triplicate c ~nodes:[ g ] in
  let cb' = Circuit_bdd.build c' in
  let total_after =
    List.fold_left
      (fun acc name ->
        match Circuit.find_opt c' name with
        | Some v -> acc +. (Circuit_bdd.epp_exact cb' v).Circuit_bdd.p_sensitized
        | None -> acc)
      0.0
      [ "A"; "E"; "G"; "D"; "H" ]
  in
  check_bool "exact sensitization drops" true (total_after < total_before)

let test_tmr_rejects_non_gates () =
  let c = fig1 () in
  Alcotest.check_raises "input selected" (Transform.Not_a_gate "B") (fun () ->
      ignore (Transform.triplicate c ~nodes:[ Circuit.find c "B" ]))

let test_tmr_bad_node () =
  let c = fig1 () in
  Alcotest.check_raises "bad id" (Invalid_argument "Transform.triplicate: bad node") (fun () ->
      ignore (Transform.triplicate c ~nodes:[ 999 ]))

let prop_tmr_preserves_behaviour =
  qtest ~count:20 ~name:"TMR preserves behaviour for any gate choice" seed_arbitrary
    (fun seed ->
      let c = random_small_dag ~seed in
      let gates =
        List.filter (Circuit.is_gate c) (List.init (Circuit.node_count c) Fun.id)
      in
      match gates with
      | [] -> true
      | g :: _ ->
        let pick = List.nth gates (seed mod List.length gates) in
        ignore g;
        equivalent_behaviour c (Transform.triplicate c ~nodes:[ pick ]))

(* --- metamorphic mutations ------------------------------------------------- *)

(* The conformance invariant (DESIGN.md §12): a mutation must preserve the
   analytical P_sensitized of every surviving site, bit-for-bit up to 1e-12.
   Computed over the plain topological signal probabilities, like the
   conformance oracles. *)
let epp_by_name c =
  let sp = Sigprob.Sp_topological.compute c in
  let engine = Epp.Epp_engine.create ~sp c in
  List.map
    (fun (r : Epp.Epp_engine.site_result) ->
      (Circuit.node_name c r.Epp.Epp_engine.site, r.Epp.Epp_engine.p_sensitized))
    (Epp.Epp_engine.analyze_all engine)

let check_epp_invariant msg parent mutant =
  let after = epp_by_name mutant in
  List.iter
    (fun (name, p) ->
      match List.assoc_opt name after with
      | None -> ()
      | Some p' ->
        if Float.abs (p -. p') > 1e-12 then
          Alcotest.failf "%s: surviving site %s moved %.17g -> %.17g" msg name p p')
    (epp_by_name parent)

let test_insert_buffer_invariant () =
  let c = fig1 () in
  for net = 0 to Circuit.node_count c - 1 do
    let m = Transform.insert_identity c ~net in
    check_int "one gate added" (Circuit.gate_count c + 1) (Circuit.gate_count m);
    check_bool "behaviour" true (equivalent_behaviour c m);
    check_epp_invariant (Printf.sprintf "buffer on net %d" net) c m
  done

let test_insert_inverter_pair_invariant () =
  let c = fig1 () in
  for net = 0 to Circuit.node_count c - 1 do
    let m = Transform.insert_identity ~double_invert:true c ~net in
    check_int "two gates added" (Circuit.gate_count c + 2) (Circuit.gate_count m);
    check_bool "behaviour" true (equivalent_behaviour c m);
    check_epp_invariant (Printf.sprintf "inverter pair on net %d" net) c m
  done

let test_split_fanout_invariant () =
  let c = fig1 () in
  (* A drives E and D: a genuine fanout split. *)
  let m = Transform.split_fanout c ~net:(Circuit.find c "A") in
  check_int "one buffer added" (Circuit.gate_count c + 1) (Circuit.gate_count m);
  check_bool "behaviour" true (equivalent_behaviour c m);
  check_epp_invariant "split A" c m;
  (* A single-consumer net is left untouched. *)
  let u = Transform.split_fanout c ~net:(Circuit.find c "E") in
  check_int "unchanged" (Circuit.gate_count c) (Circuit.gate_count u)

let test_de_morgan_invariant () =
  let c = fig1 () in
  List.iter
    (fun v ->
      match Circuit.kind_of c v with
      | Some (Gate.And | Gate.Or | Gate.Nand | Gate.Nor) ->
        let m = Transform.de_morgan c ~gate:v in
        check_bool "behaviour" true (equivalent_behaviour c m);
        check_epp_invariant
          (Printf.sprintf "de Morgan on %s" (Circuit.node_name c v))
          c m
      | _ -> ())
    (List.init (Circuit.node_count c) Fun.id);
  Alcotest.check_raises "not eligible"
    (Invalid_argument "Transform.de_morgan: not an AND/OR/NAND/NOR gate") (fun () ->
      ignore (Transform.de_morgan c ~gate:(Circuit.find c "E")))

let test_permute_observations_invariant () =
  let c = random_small_dag ~seed:11 in
  let k = Circuit.output_count c in
  check_bool "fixture has several POs" true (k >= 2);
  let perm = Array.init k (fun i -> (i + 1) mod k) in
  let m = Transform.permute_observations c ~perm in
  check_epp_invariant "permute POs" c m;
  (* The observed nets are the same multiset, in permuted order. *)
  let nets c = List.map (Circuit.node_name c) (Circuit.outputs c) in
  check_bool "same nets" true
    (List.sort compare (nets c) = List.sort compare (nets m));
  check_bool "order permuted" true (nets c <> nets m || k = 1);
  Alcotest.check_raises "bad length"
    (Invalid_argument "Transform.permute_observations: bad length") (fun () ->
      ignore (Transform.permute_observations c ~perm:[| 0 |]));
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Transform.permute_observations: not a permutation") (fun () ->
      ignore (Transform.permute_observations c ~perm:(Array.make k 0)))

let prop_mutations_preserve_epp =
  qtest ~count:25 ~name:"mutation chain preserves EPP of surviving sites" seed_arbitrary
    (fun seed ->
      with_repro ~build:(fun s -> random_small_dag ~seed:s) seed (fun c ->
          let rng = Rng.create ~seed in
          let n = Circuit.node_count c in
          let m1 = Transform.insert_identity c ~net:(Rng.int rng ~bound:n) in
          let m2 =
            Transform.insert_identity ~double_invert:true m1
              ~net:(Rng.int rng ~bound:(Circuit.node_count m1))
          in
          let m3 =
            match
              List.filter
                (fun v ->
                  match Circuit.kind_of m2 v with
                  | Some (Gate.And | Gate.Or | Gate.Nand | Gate.Nor) -> true
                  | _ -> false)
                (List.init (Circuit.node_count m2) Fun.id)
            with
            | [] -> m2
            | eligible ->
              Transform.de_morgan m2
                ~gate:(List.nth eligible (Rng.int rng ~bound:(List.length eligible)))
          in
          check_epp_invariant "chain" c m3;
          equivalent_behaviour c m3))

(* --- reported deltas vs the structural oracle ------------------------------ *)

(* Every [*_delta] variant must report exactly the delta that
   Delta.structural_diff recomputes from the two circuits alone — the
   incremental machinery trusts the reported touched sets, so an
   under-report here would silently splice stale results. *)
let check_delta_oracle msg d =
  let oracle =
    Delta.structural_diff ~before:(Delta.before d) ~after:(Delta.after d)
  in
  let show l = String.concat "," (List.map string_of_int l) in
  let cmp what got want =
    if got <> want then
      Alcotest.failf "%s: %s reported [%s], oracle says [%s]" msg what
        (show got) (show want)
  in
  cmp "touched" (Delta.touched d) (Delta.touched oracle);
  cmp "added" (Delta.added d) (Delta.added oracle);
  cmp "removed" (Delta.removed d) (Delta.removed oracle);
  check_bool (msg ^ ": id maps match") true
    (Delta.new_of_old d = Delta.new_of_old oracle
    && Delta.old_of_new d = Delta.old_of_new oracle)

let test_delta_insert_identity () =
  let c = fig1 () in
  for net = 0 to Circuit.node_count c - 1 do
    let after, d = Transform.insert_identity_delta c ~net in
    check_bool "delta wraps the result" true (after == Delta.after d);
    check_bool "delta starts from the input" true (c == Delta.before d);
    check_delta_oracle (Printf.sprintf "buffer on net %d" net) d;
    let after2, d2 = Transform.insert_identity_delta ~double_invert:true c ~net in
    check_bool "delta wraps the result (ii2)" true (after2 == Delta.after d2);
    check_delta_oracle (Printf.sprintf "inverter pair on net %d" net) d2
  done

let test_delta_split_fanout () =
  let c = fig1 () in
  (* A drives E and D: a real split with a reported consumer set. *)
  let _, d = Transform.split_fanout_delta c ~net:(Circuit.find c "A") in
  check_delta_oracle "split A" d;
  check_bool "split is not an identity" true (not (Delta.is_identity d));
  (* E has a single consumer: the transform is a no-op and says so. *)
  let after, d = Transform.split_fanout_delta c ~net:(Circuit.find c "E") in
  check_bool "single-consumer split returns the circuit" true (after == c);
  check_bool "and an identity delta" true (Delta.is_identity d)

let test_delta_de_morgan () =
  let c = fig1 () in
  List.iter
    (fun v ->
      match Circuit.kind_of c v with
      | Some (Gate.And | Gate.Or | Gate.Nand | Gate.Nor) ->
        let _, d = Transform.de_morgan_delta c ~gate:v in
        check_delta_oracle
          (Printf.sprintf "de Morgan on %s" (Circuit.node_name c v))
          d
      | _ -> ())
    (List.init (Circuit.node_count c) Fun.id)

let test_delta_triplicate () =
  let c = fig1 () in
  List.iter
    (fun v ->
      if Circuit.is_gate c v then begin
        let _, d = Transform.triplicate_delta c ~nodes:[ v ] in
        check_delta_oracle
          (Printf.sprintf "TMR on %s" (Circuit.node_name c v))
          d;
        check_bool "TMR adds nodes" true (Delta.added d <> [])
      end)
    (List.init (Circuit.node_count c) Fun.id)

let test_delta_permute_observations () =
  let c = random_small_dag ~seed:11 in
  let k = Circuit.output_count c in
  let perm = Array.init k (fun i -> (i + 1) mod k) in
  let _, d = Transform.permute_observations_delta c ~perm in
  check_delta_oracle "permute POs" d;
  check_bool "no touched nodes" true (Delta.touched d = [])

let prop_deltas_match_oracle =
  qtest ~count:40 ~name:"random delta chain matches the structural oracle"
    seed_arbitrary (fun seed ->
      with_repro ~build:(fun s -> random_small_dag ~seed:s) seed (fun c ->
          let rng = Rng.create ~seed in
          let step circuit i =
            let n = Circuit.node_count circuit in
            let gates =
              List.filter (Circuit.is_gate circuit)
                (List.init n Fun.id)
            in
            let after, d =
              match Rng.int rng ~bound:4 with
              | 0 -> Transform.insert_identity_delta circuit ~net:(Rng.int rng ~bound:n)
              | 1 -> Transform.split_fanout_delta circuit ~net:(Rng.int rng ~bound:n)
              | 2 when gates <> [] ->
                Transform.triplicate_delta circuit
                  ~nodes:[ List.nth gates (Rng.int rng ~bound:(List.length gates)) ]
              | _ -> (
                match
                  List.filter
                    (fun v ->
                      match Circuit.kind_of circuit v with
                      | Some (Gate.And | Gate.Or | Gate.Nand | Gate.Nor) -> true
                      | _ -> false)
                    (List.init n Fun.id)
                with
                | [] -> Transform.insert_identity_delta circuit ~net:(Rng.int rng ~bound:n)
                | eligible ->
                  Transform.de_morgan_delta circuit
                    ~gate:(List.nth eligible (Rng.int rng ~bound:(List.length eligible))))
            in
            check_delta_oracle (Printf.sprintf "chain step %d" i) d;
            after
          in
          let rec chain circuit i =
            if i > 4 then true else chain (step circuit i) (i + 1)
          in
          chain c 1))

let () =
  Alcotest.run "transform"
    [
      ( "constants",
        [
          Alcotest.test_case "folding shrinks" `Quick test_constant_folding_shrinks;
          Alcotest.test_case "output becomes constant" `Quick
            test_constant_folding_to_pure_constant;
          Alcotest.test_case "NAND with 0 is 1" `Quick test_nand_with_zero_is_one;
          Alcotest.test_case "XNOR parity folding" `Quick test_xnor_parity_folding;
          prop_constant_folding_preserves_behaviour;
        ] );
      ( "hashing",
        [
          Alcotest.test_case "commutative duplicates merge" `Quick test_merge_duplicates;
          Alcotest.test_case "merging cascades" `Quick test_merge_cascades;
          prop_merge_preserves_behaviour;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "dangling logic removed" `Quick test_sweep_removes_dangling;
          Alcotest.test_case "FF cones kept" `Quick test_sweep_keeps_ff_cones;
          prop_optimize_preserves_behaviour;
          Alcotest.test_case "s27 stable under optimize" `Quick test_optimize_s27_is_stable;
        ] );
      ( "tmr",
        [
          Alcotest.test_case "structure" `Quick test_tmr_structure;
          Alcotest.test_case "exact masking of replicas" `Quick
            test_tmr_masks_replica_errors_exactly;
          Alcotest.test_case "EPP residual (independence limit)" `Quick
            test_tmr_epp_overestimates_residual;
          Alcotest.test_case "exact SER drops" `Quick test_tmr_reduces_exact_ser;
          Alcotest.test_case "rejects non-gates" `Quick test_tmr_rejects_non_gates;
          Alcotest.test_case "bad node id" `Quick test_tmr_bad_node;
          prop_tmr_preserves_behaviour;
        ] );
      ( "metamorphic",
        [
          Alcotest.test_case "buffer insertion" `Quick test_insert_buffer_invariant;
          Alcotest.test_case "inverter-pair insertion" `Quick
            test_insert_inverter_pair_invariant;
          Alcotest.test_case "fanout split" `Quick test_split_fanout_invariant;
          Alcotest.test_case "de Morgan rewrite" `Quick test_de_morgan_invariant;
          Alcotest.test_case "observation permutation" `Quick
            test_permute_observations_invariant;
          prop_mutations_preserve_epp;
        ] );
      ( "deltas",
        [
          Alcotest.test_case "buffer insertion" `Quick test_delta_insert_identity;
          Alcotest.test_case "fanout split" `Quick test_delta_split_fanout;
          Alcotest.test_case "de Morgan rewrite" `Quick test_delta_de_morgan;
          Alcotest.test_case "TMR" `Quick test_delta_triplicate;
          Alcotest.test_case "observation permutation" `Quick
            test_delta_permute_observations;
          prop_deltas_match_oracle;
        ] );
    ]
