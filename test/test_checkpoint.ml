(* Tests for Report.Checkpoint: bit-exact save/load round trips, atomicity
   hygiene, fingerprint keying, and corrupt-file rejection. *)

open Helpers

let bits = Int64.bits_of_float

let entries_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (s1, e1) (s2, e2) ->
         s1 = s2
         &&
         match (e1, e2) with
         | ( Epp.Supervisor.Analyzed { result = r1; step = st1 },
             Epp.Supervisor.Analyzed { result = r2; step = st2 } ) ->
           st1 = st2
           && r1.Epp.Epp_engine.site = r2.Epp.Epp_engine.site
           && bits r1.Epp.Epp_engine.p_sensitized = bits r2.Epp.Epp_engine.p_sensitized
           && r1.Epp.Epp_engine.cone_size = r2.Epp.Epp_engine.cone_size
           && r1.Epp.Epp_engine.reached_outputs = r2.Epp.Epp_engine.reached_outputs
           && List.for_all2
                (fun (o1, p1) (o2, p2) -> o1 = o2 && bits p1 = bits p2)
                r1.Epp.Epp_engine.per_observation r2.Epp.Epp_engine.per_observation
         | Epp.Supervisor.Quarantined q1, Epp.Supervisor.Quarantined q2 ->
           q1 = q2
         | _ -> false)
       a b

(* Entries exercising every serialized shape: both steps, PO and FF
   observations, awkward floats (hex round-trip), every fault constructor,
   strings with spaces and quotes. *)
let sample_entries () =
  [
    ( 0,
      Epp.Supervisor.Analyzed
        {
          result =
            {
              Epp.Epp_engine.site = 0;
              p_sensitized = 0.1;
              per_observation =
                [ (Netlist.Circuit.Po 9, 1.0 /. 3.0); (Netlist.Circuit.Ff_data 4, 1e-300) ];
              cone_size = 7;
              reached_outputs = 2;
            };
          step = Epp.Diag.Kernel;
        } );
    ( 3,
      Epp.Supervisor.Analyzed
        {
          result =
            {
              Epp.Epp_engine.site = 3;
              p_sensitized = 0.9999999999999999;
              per_observation = [];
              cone_size = 1;
              reached_outputs = 0;
            };
          step = Epp.Diag.Reference;
        } );
    ( 5,
      Epp.Supervisor.Quarantined
        {
          Epp.Diag.site = 5;
          name = "a name \"with\" spaces";
          cone_size = Some 12;
          faults =
            [
              (Epp.Diag.Kernel, Epp.Diag.Nan { where = "four-state vector" });
              ( Epp.Diag.Reference,
                Epp.Diag.Exception { exn = "Failure(\"boom with spaces\")" } );
            ];
        } );
    ( 6,
      Epp.Supervisor.Quarantined
        {
          Epp.Diag.site = 6;
          name = "g6";
          cone_size = None;
          faults =
            [
              (Epp.Diag.Kernel, Epp.Diag.Sum_defect { defect = 0.25; tolerance = 1e-6 });
              (Epp.Diag.Reference, Epp.Diag.Out_of_range { where = "p_sensitized"; value = 2.5 });
            ];
        } );
  ]

let test_round_trip () =
  let path = Filename.temp_file "serprop_ck" ".txt" in
  let t =
    {
      Report.Checkpoint.fingerprint = "abc123";
      total_sites = 10;
      entries = sample_entries ();
    }
  in
  Report.Checkpoint.save path t;
  check_bool "no tmp file left behind" false (Sys.file_exists (path ^ ".tmp"));
  (match Report.Checkpoint.load path with
  | Error e -> Alcotest.fail (Report.Checkpoint.error_message e)
  | Ok loaded ->
    check_string "fingerprint" t.Report.Checkpoint.fingerprint
      loaded.Report.Checkpoint.fingerprint;
    check_int "total" t.Report.Checkpoint.total_sites loaded.Report.Checkpoint.total_sites;
    check_bool "entries round-trip bit-exactly" true
      (entries_equal t.Report.Checkpoint.entries loaded.Report.Checkpoint.entries));
  Sys.remove path

let test_overwrite_is_atomic_rename () =
  let path = Filename.temp_file "serprop_ck" ".txt" in
  let t fingerprint =
    { Report.Checkpoint.fingerprint; total_sites = 1; entries = [] }
  in
  Report.Checkpoint.save path (t "first");
  Report.Checkpoint.save path (t "second");
  (match Report.Checkpoint.load path with
  | Ok { Report.Checkpoint.fingerprint = "second"; _ } -> ()
  | Ok _ -> Alcotest.fail "stale snapshot survived the overwrite"
  | Error e -> Alcotest.fail (Report.Checkpoint.error_message e));
  Sys.remove path

let test_corrupt_files () =
  let reject name content =
    let path = Filename.temp_file "serprop_ck" ".txt" in
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    (match Report.Checkpoint.load path with
    | Error (Report.Checkpoint.Corrupt _) -> ()
    | Error _ -> Alcotest.fail (name ^ ": wrong error class")
    | Ok _ -> Alcotest.fail (name ^ ": accepted corrupt input"));
    Sys.remove path
  in
  reject "empty file" "";
  reject "wrong magic" "not a checkpoint\n";
  reject "missing header" "serprop-checkpoint v1\n";
  reject "bad entry tag"
    "serprop-checkpoint v1\nfingerprint x\ntotal 3\nbogus 1 2 3\n";
  reject "truncated entry"
    "serprop-checkpoint v1\nfingerprint x\ntotal 3\nok 0 k 1 1\n";
  check_bool "missing file is Corrupt, not an exception" true
    (match Report.Checkpoint.load "/nonexistent/serprop.ck" with
    | Error (Report.Checkpoint.Corrupt _) -> true
    | _ -> false)

let test_fingerprint_keys () =
  let c1 = fig1 () in
  let c2 = small_tree () in
  let e1 = Epp.Epp_engine.create c1 in
  let e1' = Epp.Epp_engine.create ~mode:Epp.Epp_engine.Naive c1 in
  let e2 = Epp.Epp_engine.create c2 in
  let f1 = Report.Checkpoint.fingerprint e1 in
  check_string "deterministic" f1 (Report.Checkpoint.fingerprint e1);
  check_bool "circuit changes it" true (f1 <> Report.Checkpoint.fingerprint e2);
  check_bool "mode changes it" true (f1 <> Report.Checkpoint.fingerprint e1');
  let sp = fig1_spec c1 in
  let e1_sp =
    Epp.Epp_engine.create ~sp:(Sigprob.Sp_topological.compute ~spec:sp c1) c1
  in
  check_bool "sp changes it" true (f1 <> Report.Checkpoint.fingerprint e1_sp)

(* The v2 fingerprint length-prefixes every name before digesting. Under the
   old raw interpolation, two circuits whose names merely split differently
   ("ab"/"c" vs "a"/"bc") fed identical bytes to the digest and aliased —
   exactly the kind of collision that would let a checkpoint from one netlist
   resume onto another. *)
let test_fingerprint_v2_injective_names () =
  let build n1 n2 =
    let b = Netlist.Builder.create ~name:"alias" () in
    Netlist.Builder.add_input b n1;
    Netlist.Builder.add_input b n2;
    Netlist.Builder.add_gate b ~output:"g" ~kind:Netlist.Gate.And [ n1; n2 ];
    Netlist.Builder.add_output b "g";
    Netlist.Builder.freeze b
  in
  let f names = Report.Checkpoint.fingerprint (Epp.Epp_engine.create names) in
  check_bool "name-boundary shift changes the fingerprint" true
    (f (build "ab" "c") <> f (build "a" "bc"));
  check_bool "pure rename changes the fingerprint" true
    (f (build "x" "y") <> f (build "x" "z"))

(* Kill-edit-restart: a run checkpoints, the process dies, the circuit is
   edited, and the operator restarts with --resume against the old snapshot.
   The post-edit engine must carry a fresh fingerprint so the stale snapshot
   is rejected rather than spliced into results for a different netlist. *)
let test_stale_snapshot_rejected_after_edit () =
  let c = fig1 () in
  let engine = Epp.Epp_engine.create c in
  let path = Filename.temp_file "serprop_ck" ".txt" in
  (match Report.Checkpoint.supervised_sweep ~domains:1 ~checkpoint:path engine with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Report.Checkpoint.error_message e));
  let _, d = Netlist.Transform.insert_identity_delta c ~net:0 in
  let engine', _ = Epp.Incremental.rebase engine d in
  check_bool "edit refreshes the engine fingerprint" true
    (Report.Checkpoint.fingerprint engine
    <> Report.Checkpoint.fingerprint engine');
  (match
     Report.Checkpoint.supervised_sweep ~domains:1 ~checkpoint:path ~resume:true
       engine'
   with
  | Error (Report.Checkpoint.Fingerprint_mismatch _) -> ()
  | Error e -> Alcotest.fail (Report.Checkpoint.error_message e)
  | Ok _ -> Alcotest.fail "resumed a pre-edit snapshot onto the edited circuit");
  Sys.remove path

let test_resume_without_file () =
  let c = fig1 () in
  let engine = Epp.Epp_engine.create c in
  (* A path that does not exist yet — supervised_sweep will create it at the
     end of the run, so delete it afterwards to keep the test stateless. *)
  let path = Filename.temp_file "serprop_ck_missing" ".txt" in
  Sys.remove path;
  (match
     Report.Checkpoint.supervised_sweep ~domains:1 ~resume:true ~checkpoint:path
       engine
   with
  | Ok outcome ->
    check_int "nothing resumed" 0 outcome.Epp.Supervisor.stats.Epp.Diag.resumed;
    check_int "everything analyzed" (Netlist.Circuit.node_count c)
      (List.length outcome.Epp.Supervisor.entries)
  | Error e -> Alcotest.fail (Report.Checkpoint.error_message e));
  if Sys.file_exists path then Sys.remove path

let test_mismatch_rejected () =
  let c1 = fig1 () in
  let c2 = small_tree () in
  let e1 = Epp.Epp_engine.create c1 in
  let e2 = Epp.Epp_engine.create c2 in
  let path = Filename.temp_file "serprop_ck" ".txt" in
  (match Report.Checkpoint.supervised_sweep ~domains:1 ~checkpoint:path e1 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Report.Checkpoint.error_message e));
  (match
     Report.Checkpoint.supervised_sweep ~domains:1 ~checkpoint:path ~resume:true e2
   with
  | Error (Report.Checkpoint.Fingerprint_mismatch _) -> ()
  | Error e -> Alcotest.fail (Report.Checkpoint.error_message e)
  | Ok _ -> Alcotest.fail "accepted a snapshot from a different circuit");
  Sys.remove path

let () =
  Alcotest.run "checkpoint"
    [
      ( "format",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "atomic overwrite" `Quick test_overwrite_is_atomic_rename;
          Alcotest.test_case "corrupt files" `Quick test_corrupt_files;
        ] );
      ( "keying",
        [
          Alcotest.test_case "fingerprint keys" `Quick test_fingerprint_keys;
          Alcotest.test_case "v2 injective encoding" `Quick
            test_fingerprint_v2_injective_names;
          Alcotest.test_case "stale snapshot rejected after edit" `Quick
            test_stale_snapshot_rejected_after_edit;
          Alcotest.test_case "resume without file" `Quick test_resume_without_file;
          Alcotest.test_case "mismatch rejected" `Quick test_mismatch_rejected;
        ] );
    ]
