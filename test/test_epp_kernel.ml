(* Tests for the allocation-free EPP kernel (Epp_engine.Workspace) and the
   work-stealing parallel driver built on it.

   The kernel is a reimplementation of the per-site pass — CSR cone DFS,
   epoch-stamped marks, SoA vectors, cone-local ordering — so the contract
   is equivalence with the boxed reference engine: every field of every
   site_result must match within 1e-12 (the arithmetic is mirrored
   operation-for-operation, so in practice the values are bit-identical),
   on every circuit shape, in both modes, with and without the cone
   restriction. *)

open Helpers
open Netlist

let obs_equal (a : Circuit.observation) (b : Circuit.observation) =
  match a, b with
  | Circuit.Po x, Circuit.Po y -> x = y
  | Circuit.Ff_data x, Circuit.Ff_data y -> x = y
  | (Circuit.Po _ | Circuit.Ff_data _), _ -> false

let results_match (a : Epp.Epp_engine.site_result) (b : Epp.Epp_engine.site_result) =
  a.Epp.Epp_engine.site = b.Epp.Epp_engine.site
  && a.Epp.Epp_engine.cone_size = b.Epp.Epp_engine.cone_size
  && a.Epp.Epp_engine.reached_outputs = b.Epp.Epp_engine.reached_outputs
  && Float.abs (a.Epp.Epp_engine.p_sensitized -. b.Epp.Epp_engine.p_sensitized) <= 1e-12
  && List.length a.Epp.Epp_engine.per_observation
     = List.length b.Epp.Epp_engine.per_observation
  && List.for_all2
       (fun (o1, p1) (o2, p2) -> obs_equal o1 o2 && Float.abs (p1 -. p2) <= 1e-12)
       a.Epp.Epp_engine.per_observation b.Epp.Epp_engine.per_observation

(* The batch engine's contract is stronger than the kernel's 1e-12: the
   arithmetic is mirrored per lane, so every float must be *bit-identical*
   to the per-site kernel's. *)
let results_match_bitwise (a : Epp.Epp_engine.site_result)
    (b : Epp.Epp_engine.site_result) =
  a.Epp.Epp_engine.site = b.Epp.Epp_engine.site
  && a.Epp.Epp_engine.cone_size = b.Epp.Epp_engine.cone_size
  && a.Epp.Epp_engine.reached_outputs = b.Epp.Epp_engine.reached_outputs
  && Int64.equal
       (Int64.bits_of_float a.Epp.Epp_engine.p_sensitized)
       (Int64.bits_of_float b.Epp.Epp_engine.p_sensitized)
  && List.length a.Epp.Epp_engine.per_observation
     = List.length b.Epp.Epp_engine.per_observation
  && List.for_all2
       (fun (o1, p1) (o2, p2) ->
         obs_equal o1 o2 && Int64.equal (Int64.bits_of_float p1) (Int64.bits_of_float p2))
       a.Epp.Epp_engine.per_observation b.Epp.Epp_engine.per_observation

let sp_for c =
  if Circuit.ff_count c > 0 then
    (Sigprob.Sp_sequential.compute c).Sigprob.Sp_sequential.result
  else Sigprob.Sp_topological.compute c

(* One workspace reused across every site of the circuit — exactly the
   epoch-stamp reuse pattern the kernel exists for. *)
let kernel_matches_reference ?(restrict_to_cone = true) ~mode c =
  let engine = Epp.Epp_engine.create ~mode ~restrict_to_cone ~sp:(sp_for c) c in
  let ws = Epp.Epp_engine.Workspace.create engine in
  let ok = ref true in
  for site = 0 to Circuit.node_count c - 1 do
    let reference = Epp.Epp_engine.analyze_site engine site in
    let kernel = Epp.Epp_engine.Workspace.analyze_site ws site in
    if not (results_match reference kernel) then ok := false
  done;
  !ok

let gen_combinational ~seed =
  let profile =
    Circuit_gen.Profiles.make
      ~name:(Printf.sprintf "kcomb%d" seed)
      ~inputs:6 ~outputs:3 ~ffs:0
      ~gates:(30 + (seed mod 50))
  in
  Circuit_gen.Random_dag.generate ~seed profile

let gen_sequential ~seed =
  let profile =
    Circuit_gen.Profiles.make
      ~name:(Printf.sprintf "kseq%d" seed)
      ~inputs:4 ~outputs:3
      ~ffs:(3 + (seed mod 4))
      ~gates:(30 + (seed mod 50))
  in
  Circuit_gen.Random_dag.generate ~seed profile

let prop_polarity_combinational =
  qtest ~count:30 ~name:"kernel = reference (polarity, combinational)" seed_arbitrary
    (fun seed -> kernel_matches_reference ~mode:Epp.Epp_engine.Polarity (gen_combinational ~seed))

let prop_polarity_sequential =
  qtest ~count:30 ~name:"kernel = reference (polarity, sequential)" seed_arbitrary
    (fun seed -> kernel_matches_reference ~mode:Epp.Epp_engine.Polarity (gen_sequential ~seed))

let prop_naive_combinational =
  qtest ~count:30 ~name:"kernel = reference (naive, combinational)" seed_arbitrary
    (fun seed -> kernel_matches_reference ~mode:Epp.Epp_engine.Naive (gen_combinational ~seed))

let prop_naive_sequential =
  qtest ~count:30 ~name:"kernel = reference (naive, sequential)" seed_arbitrary
    (fun seed -> kernel_matches_reference ~mode:Epp.Epp_engine.Naive (gen_sequential ~seed))

let prop_no_cone_ablation =
  qtest ~count:10 ~name:"kernel = reference (whole-circuit ablation)" seed_arbitrary
    (fun seed ->
      kernel_matches_reference ~restrict_to_cone:false ~mode:Epp.Epp_engine.Polarity
        (gen_sequential ~seed))

(* Deterministic mid-size fixtures: the embedded real s27 netlist and an
   ISCAS-profiled random DAG. *)
let test_s27_both_modes () =
  let c = Circuit_gen.Embedded.s27 () in
  check_bool "polarity" true (kernel_matches_reference ~mode:Epp.Epp_engine.Polarity c);
  check_bool "naive" true (kernel_matches_reference ~mode:Epp.Epp_engine.Naive c)

let test_s344_profile () =
  let c = Circuit_gen.Random_dag.generate ~seed:4 Circuit_gen.Profiles.s344 in
  check_bool "polarity" true (kernel_matches_reference ~mode:Epp.Epp_engine.Polarity c)

let test_analyze_sites_uses_kernel_consistently () =
  (* Batch API vs reference single-site API on repeated/unordered sites. *)
  let c = Circuit_gen.Random_dag.generate ~seed:7 Circuit_gen.Profiles.s298 in
  let engine = Epp.Epp_engine.create ~sp:(sp_for c) c in
  let sites = [ 11; 3; 11; 0; Circuit.node_count c - 1 ] in
  let batch = Epp.Epp_engine.analyze_sites engine sites in
  List.iter2
    (fun site r ->
      check_bool
        (Printf.sprintf "site %d" site)
        true
        (results_match (Epp.Epp_engine.analyze_site engine site) r))
    sites batch

let test_workspace_bad_site () =
  let c = fig1 () in
  let engine = Epp.Epp_engine.create ~sp:(Sigprob.Sp_topological.compute c) c in
  let ws = Epp.Epp_engine.Workspace.create engine in
  Alcotest.check_raises "negative site"
    (Invalid_argument "Epp_engine.Workspace.analyze_site: bad site") (fun () ->
      ignore (Epp.Epp_engine.Workspace.analyze_site ws (-1)))

(* --- level-synchronous batch engine ----------------------------------------- *)

(* Every site of the circuit through the batch engine at a given block size
   must be bit-identical to the per-site kernel. *)
let batch_matches_kernel ?lanes c =
  let engine = Epp.Epp_engine.create ~sp:(sp_for c) c in
  let ws = Epp.Epp_engine.Workspace.create engine in
  let n = Circuit.node_count c in
  let batch = Epp.Epp_batch.analyze_site_array ?lanes engine (Array.init n Fun.id) in
  let ok = ref true in
  for site = 0 to n - 1 do
    let kernel = Epp.Epp_engine.Workspace.analyze_site ws site in
    if not (results_match_bitwise kernel batch.(site)) then ok := false
  done;
  !ok

let prop_batch_bitwise_combinational =
  qtest ~count:20 ~name:"batch = kernel bitwise (combinational)" seed_arbitrary
    (fun seed -> batch_matches_kernel (gen_combinational ~seed))

let prop_batch_bitwise_sequential =
  qtest ~count:20 ~name:"batch = kernel bitwise (sequential)" seed_arbitrary
    (fun seed -> batch_matches_kernel (gen_sequential ~seed))

(* Block-size sweep: a degenerate 1-lane block, a ragged odd width, and the
   full lane width all chunk the same site list to the same bits.  With 7
   lanes, node_count sites always leaves a ragged final block (sites mod 7
   cycles), covering partial-block compaction. *)
let prop_batch_block_sizes =
  qtest ~count:10 ~name:"batch bitwise across block sizes 1/7/62" seed_arbitrary
    (fun seed ->
      let c = gen_sequential ~seed in
      List.for_all
        (fun lanes -> batch_matches_kernel ~lanes c)
        [ 1; 7; Epp.Epp_batch.max_lanes ])

let test_batch_s27 () =
  check_bool "s27" true (batch_matches_kernel (Circuit_gen.Embedded.s27 ()))

let test_batch_s344 () =
  let c = Circuit_gen.Random_dag.generate ~seed:4 Circuit_gen.Profiles.s344 in
  check_bool "s344 profile" true (batch_matches_kernel c)

let test_batch_duplicates_and_order () =
  (* Duplicate sites share lanes' seed bits; order must be preserved. *)
  let c = Circuit_gen.Random_dag.generate ~seed:7 Circuit_gen.Profiles.s298 in
  let engine = Epp.Epp_engine.create ~sp:(sp_for c) c in
  let sites = [ 11; 3; 11; 0; Circuit.node_count c - 1; 11 ] in
  let batch = Epp.Epp_batch.analyze_sites engine sites in
  List.iter2
    (fun site r ->
      check_bool
        (Printf.sprintf "site %d" site)
        true
        (results_match_bitwise (Epp.Epp_engine.analyze_site engine site) r))
    sites batch

let test_batch_rejects_naive () =
  let c = fig1 () in
  let engine =
    Epp.Epp_engine.create ~mode:Epp.Epp_engine.Naive
      ~sp:(Sigprob.Sp_topological.compute c) c
  in
  Alcotest.check_raises "naive rejected"
    (Invalid_argument "Epp_batch.Block.create: polarity mode only") (fun () ->
      ignore (Epp.Epp_batch.Block.create engine))

(* The density heuristic must keep tiny circuits on the per-site path and
   route dense mid-size sweeps to batch. *)
let test_density_cutover () =
  let s27 = Circuit_gen.Embedded.s27 () in
  let e27 = Epp.Epp_engine.create ~sp:(sp_for s27) s27 in
  check_bool "tiny circuit stays per-site" false
    (Epp.Epp_batch.should_batch e27 ~sites:(Circuit.node_count s27));
  let c = Circuit_gen.Random_dag.generate ~seed:4 Circuit_gen.Profiles.s344 in
  let engine = Epp.Epp_engine.create ~sp:(sp_for c) c in
  check_bool "small sweep stays per-site" false
    (Epp.Epp_batch.should_batch ~min_nodes:1 engine ~sites:2);
  check_bool "dense sweep batches" true
    (Epp.Epp_batch.should_batch ~min_nodes:1 ~density_threshold:0.0 engine
       ~sites:64);
  let d = Epp.Epp_batch.density engine in
  check_bool "density in (0, 1]" true (d > 0.0 && d <= 1.0);
  (* ablation engines never batch: the whole-circuit reference path is a
     measurement tool, not a production sweep *)
  let abl = Epp.Epp_engine.create ~restrict_to_cone:false ~sp:(sp_for c) c in
  check_bool "no-cone ablation stays per-site" false
    (Epp.Epp_batch.should_batch ~min_nodes:1 ~density_threshold:0.0 abl
       ~sites:64)

(* --- parallel driver --------------------------------------------------------- *)

let prop_parallel_domains_identical =
  qtest ~count:10 ~name:"Parallel.analyze_sites identical for domains 1/2/4"
    seed_arbitrary (fun seed ->
      let c = gen_sequential ~seed in
      let engine = Epp.Epp_engine.create ~sp:(sp_for c) c in
      let sites = List.init (Circuit.node_count c) Fun.id in
      let expected = Epp.Epp_engine.analyze_sites engine sites in
      List.for_all
        (fun domains ->
          let got = Epp.Parallel.analyze_sites ~domains engine sites in
          List.length got = List.length expected
          && List.for_all2 results_match expected got)
        [ 1; 2; 4 ])

let test_parallel_order_with_duplicates () =
  let c = Circuit_gen.Random_dag.generate ~seed:5 Circuit_gen.Profiles.s344 in
  let engine = Epp.Epp_engine.create ~sp:(sp_for c) c in
  let n = Circuit.node_count c in
  (* enough sites to defeat the small-batch fallback at 4 domains *)
  let sites = List.init 64 (fun i -> (i * 37) mod n) in
  let got = Epp.Parallel.analyze_sites ~domains:4 engine sites in
  List.iter2
    (fun site (r : Epp.Epp_engine.site_result) ->
      check_int "input order preserved" site r.Epp.Epp_engine.site)
    sites got

let () =
  Alcotest.run "epp_kernel"
    [
      ( "equivalence",
        [
          prop_polarity_combinational;
          prop_polarity_sequential;
          prop_naive_combinational;
          prop_naive_sequential;
          prop_no_cone_ablation;
          Alcotest.test_case "s27 both modes" `Quick test_s27_both_modes;
          Alcotest.test_case "s344 profile" `Quick test_s344_profile;
          Alcotest.test_case "batch API consistent" `Quick
            test_analyze_sites_uses_kernel_consistently;
          Alcotest.test_case "bad site" `Quick test_workspace_bad_site;
        ] );
      ( "batch",
        [
          prop_batch_bitwise_combinational;
          prop_batch_bitwise_sequential;
          prop_batch_block_sizes;
          Alcotest.test_case "s27" `Quick test_batch_s27;
          Alcotest.test_case "s344 profile" `Quick test_batch_s344;
          Alcotest.test_case "duplicates and order" `Quick
            test_batch_duplicates_and_order;
          Alcotest.test_case "naive rejected" `Quick test_batch_rejects_naive;
          Alcotest.test_case "density cutover" `Quick test_density_cutover;
        ] );
      ( "parallel",
        [
          prop_parallel_domains_identical;
          Alcotest.test_case "order with duplicate sites" `Quick
            test_parallel_order_with_duplicates;
        ] );
    ]
