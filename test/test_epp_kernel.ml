(* Tests for the allocation-free EPP kernel (Epp_engine.Workspace) and the
   work-stealing parallel driver built on it.

   The kernel is a reimplementation of the per-site pass — CSR cone DFS,
   epoch-stamped marks, SoA vectors, cone-local ordering — so the contract
   is equivalence with the boxed reference engine: every field of every
   site_result must match within 1e-12 (the arithmetic is mirrored
   operation-for-operation, so in practice the values are bit-identical),
   on every circuit shape, in both modes, with and without the cone
   restriction. *)

open Helpers
open Netlist

let obs_equal (a : Circuit.observation) (b : Circuit.observation) =
  match a, b with
  | Circuit.Po x, Circuit.Po y -> x = y
  | Circuit.Ff_data x, Circuit.Ff_data y -> x = y
  | (Circuit.Po _ | Circuit.Ff_data _), _ -> false

let results_match (a : Epp.Epp_engine.site_result) (b : Epp.Epp_engine.site_result) =
  a.Epp.Epp_engine.site = b.Epp.Epp_engine.site
  && a.Epp.Epp_engine.cone_size = b.Epp.Epp_engine.cone_size
  && a.Epp.Epp_engine.reached_outputs = b.Epp.Epp_engine.reached_outputs
  && Float.abs (a.Epp.Epp_engine.p_sensitized -. b.Epp.Epp_engine.p_sensitized) <= 1e-12
  && List.length a.Epp.Epp_engine.per_observation
     = List.length b.Epp.Epp_engine.per_observation
  && List.for_all2
       (fun (o1, p1) (o2, p2) -> obs_equal o1 o2 && Float.abs (p1 -. p2) <= 1e-12)
       a.Epp.Epp_engine.per_observation b.Epp.Epp_engine.per_observation

let sp_for c =
  if Circuit.ff_count c > 0 then
    (Sigprob.Sp_sequential.compute c).Sigprob.Sp_sequential.result
  else Sigprob.Sp_topological.compute c

(* One workspace reused across every site of the circuit — exactly the
   epoch-stamp reuse pattern the kernel exists for. *)
let kernel_matches_reference ?(restrict_to_cone = true) ~mode c =
  let engine = Epp.Epp_engine.create ~mode ~restrict_to_cone ~sp:(sp_for c) c in
  let ws = Epp.Epp_engine.Workspace.create engine in
  let ok = ref true in
  for site = 0 to Circuit.node_count c - 1 do
    let reference = Epp.Epp_engine.analyze_site engine site in
    let kernel = Epp.Epp_engine.Workspace.analyze_site ws site in
    if not (results_match reference kernel) then ok := false
  done;
  !ok

let gen_combinational ~seed =
  let profile =
    Circuit_gen.Profiles.make
      ~name:(Printf.sprintf "kcomb%d" seed)
      ~inputs:6 ~outputs:3 ~ffs:0
      ~gates:(30 + (seed mod 50))
  in
  Circuit_gen.Random_dag.generate ~seed profile

let gen_sequential ~seed =
  let profile =
    Circuit_gen.Profiles.make
      ~name:(Printf.sprintf "kseq%d" seed)
      ~inputs:4 ~outputs:3
      ~ffs:(3 + (seed mod 4))
      ~gates:(30 + (seed mod 50))
  in
  Circuit_gen.Random_dag.generate ~seed profile

let prop_polarity_combinational =
  qtest ~count:30 ~name:"kernel = reference (polarity, combinational)" seed_arbitrary
    (fun seed -> kernel_matches_reference ~mode:Epp.Epp_engine.Polarity (gen_combinational ~seed))

let prop_polarity_sequential =
  qtest ~count:30 ~name:"kernel = reference (polarity, sequential)" seed_arbitrary
    (fun seed -> kernel_matches_reference ~mode:Epp.Epp_engine.Polarity (gen_sequential ~seed))

let prop_naive_combinational =
  qtest ~count:30 ~name:"kernel = reference (naive, combinational)" seed_arbitrary
    (fun seed -> kernel_matches_reference ~mode:Epp.Epp_engine.Naive (gen_combinational ~seed))

let prop_naive_sequential =
  qtest ~count:30 ~name:"kernel = reference (naive, sequential)" seed_arbitrary
    (fun seed -> kernel_matches_reference ~mode:Epp.Epp_engine.Naive (gen_sequential ~seed))

let prop_no_cone_ablation =
  qtest ~count:10 ~name:"kernel = reference (whole-circuit ablation)" seed_arbitrary
    (fun seed ->
      kernel_matches_reference ~restrict_to_cone:false ~mode:Epp.Epp_engine.Polarity
        (gen_sequential ~seed))

(* Deterministic mid-size fixtures: the embedded real s27 netlist and an
   ISCAS-profiled random DAG. *)
let test_s27_both_modes () =
  let c = Circuit_gen.Embedded.s27 () in
  check_bool "polarity" true (kernel_matches_reference ~mode:Epp.Epp_engine.Polarity c);
  check_bool "naive" true (kernel_matches_reference ~mode:Epp.Epp_engine.Naive c)

let test_s344_profile () =
  let c = Circuit_gen.Random_dag.generate ~seed:4 Circuit_gen.Profiles.s344 in
  check_bool "polarity" true (kernel_matches_reference ~mode:Epp.Epp_engine.Polarity c)

let test_analyze_sites_uses_kernel_consistently () =
  (* Batch API vs reference single-site API on repeated/unordered sites. *)
  let c = Circuit_gen.Random_dag.generate ~seed:7 Circuit_gen.Profiles.s298 in
  let engine = Epp.Epp_engine.create ~sp:(sp_for c) c in
  let sites = [ 11; 3; 11; 0; Circuit.node_count c - 1 ] in
  let batch = Epp.Epp_engine.analyze_sites engine sites in
  List.iter2
    (fun site r ->
      check_bool
        (Printf.sprintf "site %d" site)
        true
        (results_match (Epp.Epp_engine.analyze_site engine site) r))
    sites batch

let test_workspace_bad_site () =
  let c = fig1 () in
  let engine = Epp.Epp_engine.create ~sp:(Sigprob.Sp_topological.compute c) c in
  let ws = Epp.Epp_engine.Workspace.create engine in
  Alcotest.check_raises "negative site"
    (Invalid_argument "Epp_engine.Workspace.analyze_site: bad site") (fun () ->
      ignore (Epp.Epp_engine.Workspace.analyze_site ws (-1)))

(* --- parallel driver --------------------------------------------------------- *)

let prop_parallel_domains_identical =
  qtest ~count:10 ~name:"Parallel.analyze_sites identical for domains 1/2/4"
    seed_arbitrary (fun seed ->
      let c = gen_sequential ~seed in
      let engine = Epp.Epp_engine.create ~sp:(sp_for c) c in
      let sites = List.init (Circuit.node_count c) Fun.id in
      let expected = Epp.Epp_engine.analyze_sites engine sites in
      List.for_all
        (fun domains ->
          let got = Epp.Parallel.analyze_sites ~domains engine sites in
          List.length got = List.length expected
          && List.for_all2 results_match expected got)
        [ 1; 2; 4 ])

let test_parallel_order_with_duplicates () =
  let c = Circuit_gen.Random_dag.generate ~seed:5 Circuit_gen.Profiles.s344 in
  let engine = Epp.Epp_engine.create ~sp:(sp_for c) c in
  let n = Circuit.node_count c in
  (* enough sites to defeat the small-batch fallback at 4 domains *)
  let sites = List.init 64 (fun i -> (i * 37) mod n) in
  let got = Epp.Parallel.analyze_sites ~domains:4 engine sites in
  List.iter2
    (fun site (r : Epp.Epp_engine.site_result) ->
      check_int "input order preserved" site r.Epp.Epp_engine.site)
    sites got

let () =
  Alcotest.run "epp_kernel"
    [
      ( "equivalence",
        [
          prop_polarity_combinational;
          prop_polarity_sequential;
          prop_naive_combinational;
          prop_naive_sequential;
          prop_no_cone_ablation;
          Alcotest.test_case "s27 both modes" `Quick test_s27_both_modes;
          Alcotest.test_case "s344 profile" `Quick test_s344_profile;
          Alcotest.test_case "batch API consistent" `Quick
            test_analyze_sites_uses_kernel_consistently;
          Alcotest.test_case "bad site" `Quick test_workspace_bad_site;
        ] );
      ( "parallel",
        [
          prop_parallel_domains_identical;
          Alcotest.test_case "order with duplicate sites" `Quick
            test_parallel_order_with_duplicates;
        ] );
    ]
