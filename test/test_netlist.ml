(* Tests for the netlist substrate: gate semantics, the builder's
   validation, circuit accessors, statistics. *)

open Helpers
open Netlist

(* --- gate semantics ------------------------------------------------------- *)

let test_gate_truth_tables () =
  let t = true and f = false in
  let cases =
    [
      (Gate.And, [| t; t |], t); (Gate.And, [| t; f |], f);
      (Gate.Nand, [| t; t |], f); (Gate.Nand, [| f; f |], t);
      (Gate.Or, [| f; f |], f); (Gate.Or, [| f; t |], t);
      (Gate.Nor, [| f; f |], t); (Gate.Nor, [| t; f |], f);
      (Gate.Xor, [| t; f |], t); (Gate.Xor, [| t; t |], f);
      (Gate.Xnor, [| t; t |], t); (Gate.Xnor, [| t; f |], f);
      (Gate.Not, [| t |], f); (Gate.Not, [| f |], t);
      (Gate.Buf, [| t |], t); (Gate.Buf, [| f |], f);
      (Gate.Const0, [||], f); (Gate.Const1, [||], t);
      (Gate.And, [| t; t; t |], t); (Gate.And, [| t; t; f |], f);
      (Gate.Xor, [| t; t; t |], t); (Gate.Xor, [| t; t; f |], f);
    ]
  in
  List.iter
    (fun (kind, inputs, expected) ->
      check_bool
        (Printf.sprintf "%s %s" (Gate.to_string kind)
           (String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list inputs))))
        expected (Gate.eval kind inputs))
    cases

let test_gate_arity_errors () =
  check_bool "NOT wants 1" false (Gate.arity_ok Gate.Not 2);
  check_bool "AND accepts 1 (ISCAS buffer idiom)" true (Gate.arity_ok Gate.And 1);
  check_bool "AND rejects 0" false (Gate.arity_ok Gate.And 0);
  check_bool "CONST0 wants 0" true (Gate.arity_ok Gate.Const0 0);
  Alcotest.check_raises "eval checks arity" (Gate.Arity_error { kind = Gate.Not; got = 2 })
    (fun () -> ignore (Gate.eval Gate.Not [| true; false |]))

let test_gate_of_string_aliases () =
  Alcotest.(check (option string))
    "INVERT -> NOT"
    (Some "NOT")
    (Option.map Gate.to_string (Gate.of_string "invert"));
  Alcotest.(check (option string))
    "BUFF -> BUF"
    (Some "BUF")
    (Option.map Gate.to_string (Gate.of_string "BUFF"));
  Alcotest.(check (option string)) "unknown" None (Option.map Gate.to_string (Gate.of_string "MUX"))

let test_gate_string_roundtrip () =
  List.iter
    (fun k ->
      match Gate.of_string (Gate.to_string k) with
      | Some k' -> check_bool (Gate.to_string k) true (k = k')
      | None -> Alcotest.failf "no parse for %s" (Gate.to_string k))
    Gate.all

let test_controlling_values () =
  Alcotest.(check (option bool)) "AND" (Some false) (Gate.controlling_value Gate.And);
  Alcotest.(check (option bool)) "NOR" (Some true) (Gate.controlling_value Gate.Nor);
  Alcotest.(check (option bool)) "XOR" None (Gate.controlling_value Gate.Xor)

(* eval_word bit i must equal eval applied to bit i of the inputs. *)
let prop_eval_word_consistent =
  qtest ~name:"eval_word consistent with eval on every bit" seed_arbitrary (fun seed ->
      let rng = Rng.create ~seed in
      let kinds = [| Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor |] in
      let kind = kinds.(Rng.int rng ~bound:6) in
      let arity = 1 + Rng.int rng ~bound:4 in
      let words = Array.init arity (fun _ -> Rng.word rng) in
      let out = Gate.eval_word kind words in
      let ok = ref true in
      for bit = 0 to 63 do
        let bits = Array.map (fun w -> Logic_sim.Word.get w bit) words in
        if Gate.eval kind bits <> Logic_sim.Word.get out bit then ok := false
      done;
      !ok)

let prop_eval_word_unary =
  qtest ~name:"eval_word NOT/BUF" seed_arbitrary (fun seed ->
      let rng = Rng.create ~seed in
      let w = Rng.word rng in
      Gate.eval_word Gate.Not [| w |] = Int64.lognot w && Gate.eval_word Gate.Buf [| w |] = w)

(* --- builder validation --------------------------------------------------- *)

let test_builder_minimal () =
  let b = Builder.create ~name:"mini" () in
  Builder.add_input b "a";
  Builder.add_gate b ~output:"y" ~kind:Gate.Not [ "a" ];
  Builder.add_output b "y";
  let c = Builder.freeze b in
  check_int "nodes" 2 (Circuit.node_count c);
  check_int "inputs" 1 (Circuit.input_count c);
  check_int "outputs" 1 (Circuit.output_count c);
  check_int "gates" 1 (Circuit.gate_count c);
  check_string "name" "mini" (Circuit.name c)

let test_builder_duplicate () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Alcotest.check_raises "duplicate" (Builder.Error (Builder.Duplicate_definition "a"))
    (fun () -> Builder.add_gate b ~output:"a" ~kind:Gate.Not [ "a" ])

let test_builder_undefined () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_gate b ~output:"y" ~kind:Gate.And [ "a"; "ghost" ];
  Builder.add_output b "y";
  Alcotest.check_raises "undefined signal"
    (Builder.Error (Builder.Undefined_signal { referenced_by = "y"; missing = "ghost" }))
    (fun () -> ignore (Builder.freeze b))

let test_builder_undefined_output () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_output b "ghost";
  Alcotest.check_raises "undefined output"
    (Builder.Error
       (Builder.Undefined_signal { referenced_by = "OUTPUT declaration"; missing = "ghost" }))
    (fun () -> ignore (Builder.freeze b))

let test_builder_arity () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_input b "b";
  Alcotest.check_raises "NOT with 2 inputs"
    (Builder.Error (Builder.Arity { gate = "y"; kind = Gate.Not; got = 2 }))
    (fun () -> Builder.add_gate b ~output:"y" ~kind:Gate.Not [ "a"; "b" ])

let test_builder_duplicate_output () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_output b "a";
  Alcotest.check_raises "duplicate output" (Builder.Error (Builder.Duplicate_output "a"))
    (fun () -> Builder.add_output b "a")

let test_builder_cycle () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_gate b ~output:"p" ~kind:Gate.And [ "a"; "q" ];
  Builder.add_gate b ~output:"q" ~kind:Gate.And [ "a"; "p" ];
  Builder.add_output b "q";
  match Builder.freeze b with
  | _ -> Alcotest.fail "expected Combinational_cycle"
  | exception Builder.Error (Builder.Combinational_cycle loops) ->
    check_int "one loop" 1 (List.length loops);
    Alcotest.(check (list string)) "names" [ "p"; "q" ] (List.sort compare (List.hd loops))

let test_builder_ff_breaks_cycle () =
  (* The same feedback through a flip-flop is legal. *)
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_gate b ~output:"p" ~kind:Gate.And [ "a"; "q" ];
  Builder.add_dff b ~q:"q" ~d:"p";
  Builder.add_output b "p";
  let c = Builder.freeze b in
  check_int "ff count" 1 (Circuit.ff_count c)

let test_builder_forward_reference () =
  let b = Builder.create () in
  Builder.add_gate b ~output:"y" ~kind:Gate.Not [ "a" ];
  Builder.add_input b "a";
  Builder.add_output b "y";
  let c = Builder.freeze b in
  check_int "resolved" 2 (Circuit.node_count c)

let test_error_to_string_coverage () =
  List.iter
    (fun e -> check_bool "nonempty message" true (String.length (Builder.error_to_string e) > 0))
    [
      Builder.Duplicate_definition "x";
      Builder.Undefined_signal { referenced_by = "y"; missing = "x" };
      Builder.Arity { gate = "y"; kind = Gate.Not; got = 3 };
      Builder.Combinational_cycle [ [ "a"; "b" ] ];
      Builder.Duplicate_output "z";
    ]

(* --- circuit accessors ---------------------------------------------------- *)

let test_circuit_structure () =
  let c = fig1 () in
  check_int "nodes" 10 (Circuit.node_count c);
  check_int "gates" 5 (Circuit.gate_count c);
  check_int "depth" 4 (Circuit.depth c);
  let h = Circuit.find c "H" in
  Alcotest.(check (list int)) "H has no comb fanout" [] (Circuit.fanouts c h);
  let a = Circuit.find c "A" in
  check_int "A drives two gates" 2 (List.length (Circuit.fanouts c a));
  check_bool "A is a gate" true (Circuit.is_gate c a);
  check_bool "I1 is input" true (Circuit.is_input c (Circuit.find c "I1"))

let test_circuit_find () =
  let c = fig1 () in
  check_bool "find_opt hit" true (Circuit.find_opt c "H" <> None);
  Alcotest.(check (option int)) "find_opt miss" None (Circuit.find_opt c "nope");
  Alcotest.check_raises "find miss" Not_found (fun () -> ignore (Circuit.find c "nope"))

let test_observations_combinational () =
  let c = fig1 () in
  match Circuit.observations c with
  | [ Circuit.Po h ] ->
    check_int "PO is H" (Circuit.find c "H") h;
    check_int "net" h (Circuit.observation_net c (Circuit.Po h));
    check_string "name" "H" (Circuit.observation_name c (Circuit.Po h))
  | _ -> Alcotest.fail "expected exactly one PO"

let test_observations_sequential () =
  let c = shift_register () in
  let obs = Circuit.observations c in
  check_int "1 PO + 3 FF" 4 (List.length obs);
  let ffd =
    List.filter_map
      (function
        | Circuit.Ff_data ff -> Some (Circuit.observation_name c (Circuit.Ff_data ff))
        | Circuit.Po _ -> None)
      obs
  in
  Alcotest.(check (list string)) "ff data names" [ "q0.D"; "q1.D"; "q2.D" ]
    (List.sort compare ffd)

let test_pseudo_inputs () =
  let c = shift_register () in
  let pi = List.map (Circuit.node_name c) (Circuit.pseudo_inputs c) in
  Alcotest.(check (list string)) "si + 3 FFs" [ "q0"; "q1"; "q2"; "si" ] (List.sort compare pi)

let test_topological_order_valid () =
  let c = fig1 () in
  let order = Array.to_list (Circuit.topological_order c) in
  check_bool "valid order" true (Topo.is_topological_order (Circuit.graph c) order)

(* --- analysis context ------------------------------------------------------ *)

let test_analysis_memo_identity () =
  let c = fig1 () in
  let o1 = Circuit.topological_order c in
  check_bool "order served from one memo" true (o1 == Circuit.topological_order c);
  let ctx = Analysis.get c in
  check_bool "context shares the memoized order" true (Analysis.order ctx == o1);
  check_bool "context itself is memoized" true (Analysis.get c == ctx);
  check_bool "levels memoized" true (Circuit.levels c == Circuit.levels c);
  check_bool "context shares levels" true (Analysis.levels ctx == Circuit.levels c);
  check_bool "reverse CSR memoized" true
    (Circuit.reverse_csr c == Circuit.reverse_csr c);
  check_bool "cone served from cache" true
    (Analysis.cone ctx 0 == Analysis.cone ctx 0);
  check_bool "distance map served from cache" true
    (Analysis.distances_to ctx 0 == Analysis.distances_to ctx 0)

let test_analysis_counters () =
  let registry = Obs.Metrics.create () in
  Obs.Hooks.set_metrics registry;
  Fun.protect ~finally:Obs.Hooks.reset @@ fun () ->
  let c = fig1 () in
  ignore (Circuit.topological_order c);
  ignore (Circuit.topological_order c);
  let ctx = Analysis.get c in
  ignore (Analysis.order ctx);
  ignore (Analysis.levels ctx);
  ignore (Analysis.depth ctx);
  let s = Obs.Metrics.snapshot registry in
  check_int "exactly one sort ran" 1
    (Obs.Metrics.counter_value s "analysis.topo.computed");
  check_int "accessor bypasses are metered" 2
    (Obs.Metrics.counter_value s "analysis.topo.direct_calls");
  check_int "context built once" 1
    (Obs.Metrics.counter_value s "analysis.context.computed");
  check_bool "reuse shows up as cache hits" true
    (Obs.Metrics.counter_value s "analysis.cache.hit" > 0)

(* The ownership contract of DESIGN.md §11: every array the context hands
   out is shared, and no engine may write into it.  Snapshot all of them,
   run every engine family over the circuit, and compare. *)
let prop_analysis_arrays_immutable =
  qtest ~count:25 ~name:"engines never mutate the shared analysis arrays"
    seed_arbitrary (fun seed ->
      let c = random_small_dag ~seed in
      let ctx = Analysis.get c in
      let rev = Analysis.reverse_csr ctx in
      let obs_net = (Analysis.observation_nets ctx).(0) in
      let snapshots =
        [
          Array.copy (Analysis.order ctx);
          Array.copy (Analysis.position ctx);
          Array.copy (Analysis.gate_order ctx);
          Array.copy (Analysis.levels ctx);
          Array.copy (Analysis.observation_nets ctx);
          Array.copy (Csr.offsets rev);
          Array.copy (Csr.targets rev);
          Array.copy (Analysis.distances_to ctx obs_net);
        ]
      in
      let cone_snapshot = Array.copy (Analysis.cone ctx 0) in
      let engine = Epp.Epp_engine.create c in
      ignore (Epp.Epp_engine.analyze_all engine);
      ignore (Sigprob.Sp_topological.compute c);
      ignore (Sigprob.Observability.compute c);
      let timing = Sta.Timing.analyze c in
      ignore
        (Sta.Timing.slacks timing
           ~clock_period:(Sta.Timing.max_delay timing +. 1.0));
      let current =
        [
          Analysis.order ctx;
          Analysis.position ctx;
          Analysis.gate_order ctx;
          Analysis.levels ctx;
          Analysis.observation_nets ctx;
          Csr.offsets rev;
          Csr.targets rev;
          Analysis.distances_to ctx obs_net;
        ]
      in
      List.for_all2 (fun a b -> a = b) snapshots current
      && cone_snapshot = Analysis.cone ctx 0)

(* --- statistics ----------------------------------------------------------- *)

let test_stats_fig1 () =
  let s = Stats.compute ~with_reconvergence:true (fig1 ()) in
  check_int "gates" 5 s.Stats.gate_count;
  check_int "depth" 4 s.Stats.depth;
  check_int "max fanin" 3 s.Stats.max_fanin;
  (* A fans out to D and E whose branches reconverge at H. *)
  check_bool "fig1 has a reconvergent site" true (s.Stats.reconvergent_site_count >= 1)

let test_stats_no_reconvergence_in_tree () =
  let s = Stats.compute ~with_reconvergence:true (small_tree ()) in
  check_int "trees never reconverge" 0 s.Stats.reconvergent_site_count

let test_stats_gate_kind_counts () =
  let s = Stats.compute (fig1 ()) in
  let find k = List.assoc_opt k s.Stats.gate_kind_counts in
  Alcotest.(check (option int)) "ANDs" (Some 3) (find Gate.And);
  Alcotest.(check (option int)) "ORs" (Some 1) (find Gate.Or);
  Alcotest.(check (option int)) "NOTs" (Some 1) (find Gate.Not);
  Alcotest.(check (option int)) "no XOR entry" None (find Gate.Xor)

let () =
  Alcotest.run "netlist"
    [
      ( "gate",
        [
          Alcotest.test_case "truth tables" `Quick test_gate_truth_tables;
          Alcotest.test_case "arity rules" `Quick test_gate_arity_errors;
          Alcotest.test_case "of_string aliases" `Quick test_gate_of_string_aliases;
          Alcotest.test_case "to_string/of_string round-trip" `Quick test_gate_string_roundtrip;
          Alcotest.test_case "controlling values" `Quick test_controlling_values;
          prop_eval_word_consistent;
          prop_eval_word_unary;
        ] );
      ( "builder",
        [
          Alcotest.test_case "minimal circuit" `Quick test_builder_minimal;
          Alcotest.test_case "duplicate definition" `Quick test_builder_duplicate;
          Alcotest.test_case "undefined signal" `Quick test_builder_undefined;
          Alcotest.test_case "undefined output" `Quick test_builder_undefined_output;
          Alcotest.test_case "arity violation" `Quick test_builder_arity;
          Alcotest.test_case "duplicate output" `Quick test_builder_duplicate_output;
          Alcotest.test_case "combinational cycle" `Quick test_builder_cycle;
          Alcotest.test_case "flip-flop breaks cycle" `Quick test_builder_ff_breaks_cycle;
          Alcotest.test_case "forward references" `Quick test_builder_forward_reference;
          Alcotest.test_case "error messages" `Quick test_error_to_string_coverage;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "structure of fig1" `Quick test_circuit_structure;
          Alcotest.test_case "find" `Quick test_circuit_find;
          Alcotest.test_case "observations (combinational)" `Quick test_observations_combinational;
          Alcotest.test_case "observations (sequential)" `Quick test_observations_sequential;
          Alcotest.test_case "pseudo inputs" `Quick test_pseudo_inputs;
          Alcotest.test_case "topological order valid" `Quick test_topological_order_valid;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "memoized facts are shared instances" `Quick
            test_analysis_memo_identity;
          Alcotest.test_case "reuse counters" `Quick test_analysis_counters;
          prop_analysis_arrays_immutable;
        ] );
      ( "stats",
        [
          Alcotest.test_case "fig1 stats" `Quick test_stats_fig1;
          Alcotest.test_case "tree has no reconvergence" `Quick test_stats_no_reconvergence_in_tree;
          Alcotest.test_case "gate kind counts" `Quick test_stats_gate_kind_counts;
        ] );
    ]
