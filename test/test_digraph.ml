(* Tests for the graph substrate: construction, topological sorting,
   levelization, reachability/cones, SCC. *)

open Helpers

(* A fixed diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3. *)
let diamond () = Digraph.of_edges ~vertex_count:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

(* Deterministic random DAG on [n] vertices: edges only forward. *)
let random_dag ~seed ~n ~density =
  let rng = Rng.create ~seed in
  let edges = ref [] in
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      if Rng.float rng < density then edges := (u, v) :: !edges
    done
  done;
  Digraph.of_edges ~vertex_count:n !edges

(* --- construction --------------------------------------------------------- *)

let test_empty () =
  let g = Digraph.of_edges ~vertex_count:0 [] in
  check_int "vertices" 0 (Digraph.vertex_count g);
  check_int "edges" 0 (Digraph.edge_count g);
  Alcotest.(check (list (pair int int))) "no edges" [] (Digraph.edges g)

let test_counts () =
  let g = diamond () in
  check_int "vertices" 4 (Digraph.vertex_count g);
  check_int "edges" 4 (Digraph.edge_count g)

let test_succ_pred () =
  let g = diamond () in
  Alcotest.(check (list int)) "succ 0" [ 1; 2 ] (Digraph.succ g 0);
  Alcotest.(check (list int)) "succ 3" [] (Digraph.succ g 3);
  Alcotest.(check (list int)) "pred 3" [ 1; 2 ] (Digraph.pred g 3);
  Alcotest.(check (list int)) "pred 0" [] (Digraph.pred g 0)

let test_degrees () =
  let g = diamond () in
  check_int "out 0" 2 (Digraph.out_degree g 0);
  check_int "in 3" 2 (Digraph.in_degree g 3);
  check_int "in 0" 0 (Digraph.in_degree g 0)

let test_invalid_vertex () =
  let g = diamond () in
  Alcotest.check_raises "succ out of range" (Digraph.Invalid_vertex 7) (fun () ->
      ignore (Digraph.succ g 7));
  Alcotest.check_raises "negative" (Digraph.Invalid_vertex (-1)) (fun () ->
      ignore (Digraph.pred g (-1)))

let test_invalid_edge () =
  Alcotest.check_raises "bad endpoint" (Digraph.Invalid_vertex 5) (fun () ->
      ignore (Digraph.of_edges ~vertex_count:3 [ (0, 5) ]))

let test_of_successors () =
  let g = Digraph.of_successors [| [ 1; 2 ]; [ 2 ]; [] |] in
  check_int "edges" 3 (Digraph.edge_count g);
  Alcotest.(check (list int)) "pred 2" [ 0; 1 ] (Digraph.pred g 2)

let test_mem_edge () =
  let g = diamond () in
  check_bool "0->1" true (Digraph.mem_edge g 0 1);
  check_bool "1->0" false (Digraph.mem_edge g 1 0);
  check_bool "0->3" false (Digraph.mem_edge g 0 3)

let test_parallel_edges () =
  let g = Digraph.of_edges ~vertex_count:2 [ (0, 1); (0, 1) ] in
  check_int "both kept" 2 (Digraph.edge_count g);
  Alcotest.(check (list int)) "succ" [ 1; 1 ] (Digraph.succ g 0)

let test_reverse () =
  let g = Digraph.reverse (diamond ()) in
  Alcotest.(check (list int)) "succ 3 in reverse" [ 1; 2 ] (Digraph.succ g 3);
  Alcotest.(check (list int)) "pred 0 in reverse" [ 1; 2 ] (Digraph.pred g 0);
  check_int "edge count preserved" 4 (Digraph.edge_count g)

let test_sources_sinks () =
  let g = diamond () in
  Alcotest.(check (list int)) "sources" [ 0 ] (Digraph.sources g);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Digraph.sinks g)

let test_edges_roundtrip () =
  let edges = [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let g = Digraph.of_edges ~vertex_count:4 edges in
  Alcotest.(check (list (pair int int))) "edges back" edges (Digraph.edges g)

(* --- topological sorting -------------------------------------------------- *)

let test_topo_diamond () =
  let g = diamond () in
  Alcotest.(check (list int)) "deterministic order" [ 0; 1; 2; 3 ] (Topo.sort g)

let test_topo_cycle () =
  let g = Digraph.of_edges ~vertex_count:3 [ (0, 1); (1, 2); (2, 0) ] in
  (match Topo.sort g with
  | _ -> Alcotest.fail "expected Cycle"
  | exception Topo.Cycle leftover -> Alcotest.(check (list int)) "members" [ 0; 1; 2 ] leftover);
  check_bool "is_acyclic" false (Topo.is_acyclic g)

let test_topo_self_loop () =
  let g = Digraph.of_edges ~vertex_count:2 [ (0, 0); (0, 1) ] in
  check_bool "self loop is a cycle" false (Topo.is_acyclic g)

let test_levels_diamond () =
  let g = diamond () in
  Alcotest.(check (array int)) "levels" [| 0; 1; 1; 2 |] (Topo.levels g);
  check_int "depth" 2 (Topo.max_level g)

let test_by_level () =
  let g = diamond () in
  let buckets = Topo.by_level g in
  check_int "bucket count" 3 (Array.length buckets);
  Alcotest.(check (list int)) "level 1" [ 1; 2 ] buckets.(1)

let test_is_topological_order_spec () =
  let g = diamond () in
  check_bool "valid" true (Topo.is_topological_order g [ 0; 2; 1; 3 ]);
  check_bool "edge backwards" false (Topo.is_topological_order g [ 1; 0; 2; 3 ]);
  check_bool "not a permutation" false (Topo.is_topological_order g [ 0; 1; 2 ]);
  check_bool "duplicates" false (Topo.is_topological_order g [ 0; 1; 1; 3 ])

let prop_topo_sort_valid =
  qtest ~name:"Topo.sort yields a valid topological order on random DAGs"
    Helpers.seed_arbitrary (fun seed ->
      let g = random_dag ~seed ~n:(10 + (seed mod 30)) ~density:0.15 in
      Topo.is_topological_order g (Topo.sort g))

let prop_levels_monotonic =
  qtest ~name:"levels increase along every edge" Helpers.seed_arbitrary (fun seed ->
      let g = random_dag ~seed ~n:(10 + (seed mod 30)) ~density:0.2 in
      let lv = Topo.levels g in
      let ok = ref true in
      Digraph.iter_edges (fun u v -> if lv.(u) >= lv.(v) then ok := false) g;
      !ok)

let prop_level_zero_iff_source =
  qtest ~name:"level 0 exactly at sources" Helpers.seed_arbitrary (fun seed ->
      let g = random_dag ~seed ~n:(5 + (seed mod 20)) ~density:0.25 in
      let lv = Topo.levels g in
      let ok = ref true in
      Digraph.iter_vertices
        (fun v ->
          let is_source = Digraph.pred g v = [] in
          if (lv.(v) = 0) <> is_source then ok := false)
        g;
      !ok)

(* --- reachability --------------------------------------------------------- *)

let test_reach_forward () =
  let g = diamond () in
  Alcotest.(check (array bool)) "from 1" [| false; true; false; true |] (Reach.forward g 1);
  Alcotest.(check (array bool)) "from 0" [| true; true; true; true |] (Reach.forward g 0)

let test_reach_members_count () =
  let visited = [| true; false; true; true |] in
  Alcotest.(check (list int)) "members" [ 0; 2; 3 ] (Reach.members visited);
  check_int "count" 3 (Reach.count visited)

let test_reach_backward () =
  let g = diamond () in
  Alcotest.(check (array bool)) "to 1" [| true; true; false; false |] (Reach.backward_set g [ 1 ])

let test_reach_multi_root () =
  let g = Digraph.of_edges ~vertex_count:5 [ (0, 2); (1, 3) ] in
  Alcotest.(check (array bool)) "two roots"
    [| true; true; true; true; false |]
    (Reach.forward_set g [ 0; 1 ])

let test_output_cone () =
  let g = diamond () in
  let cone = Reach.output_cone g ~sinks:[ 3 ] 1 in
  check_int "size" 2 (Reach.cone_size cone);
  Alcotest.(check (list int)) "reached" [ 3 ] cone.Reach.reached_sinks

let test_output_cone_unreachable () =
  let g = Digraph.of_edges ~vertex_count:3 [ (0, 1) ] in
  let cone = Reach.output_cone g ~sinks:[ 2 ] 0 in
  Alcotest.(check (list int)) "no sinks reached" [] cone.Reach.reached_sinks

let prop_reachability_transitive =
  qtest ~name:"reachability is transitive" Helpers.seed_arbitrary (fun seed ->
      let g = random_dag ~seed ~n:12 ~density:0.2 in
      let ok = ref true in
      for u = 0 to 11 do
        let ru = Reach.forward g u in
        for v = 0 to 11 do
          if ru.(v) then begin
            let rv = Reach.forward g v in
            for w = 0 to 11 do
              if rv.(w) && not ru.(w) then ok := false
            done
          end
        done
      done;
      !ok)

(* --- BFS shortest paths ----------------------------------------------------- *)

let test_bfs_distances () =
  let g = diamond () in
  Alcotest.(check (array int)) "from 0" [| 0; 1; 1; 2 |] (Bfs.distances g 0);
  Alcotest.(check (array int)) "from 3 (sink)" [| -1; -1; -1; 0 |] (Bfs.distances g 3)

let test_bfs_distance_option () =
  let g = diamond () in
  Alcotest.(check (option int)) "0 -> 3" (Some 2) (Bfs.distance g ~source:0 ~target:3);
  Alcotest.(check (option int)) "3 -> 0" None (Bfs.distance g ~source:3 ~target:0)

let test_bfs_prefers_short_route () =
  (* 0 -> 1 -> 2 -> 3 and a shortcut 0 -> 3. *)
  let g = Digraph.of_edges ~vertex_count:4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  Alcotest.(check (option int)) "shortcut wins" (Some 1) (Bfs.distance g ~source:0 ~target:3)

let test_bfs_shortest_path () =
  let g = Digraph.of_edges ~vertex_count:4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  Alcotest.(check (option (list int))) "path" (Some [ 0; 3 ])
    (Bfs.shortest_path g ~source:0 ~target:3);
  Alcotest.(check (option (list int))) "unreachable" None
    (Bfs.shortest_path g ~source:3 ~target:0);
  Alcotest.(check (option (list int))) "self" (Some [ 0 ])
    (Bfs.shortest_path g ~source:0 ~target:0)

let test_bfs_invalid_vertex () =
  let g = diamond () in
  Alcotest.check_raises "bad source" (Digraph.Invalid_vertex 9) (fun () ->
      ignore (Bfs.distances g 9))

let prop_bfs_distance_at_most_levels =
  qtest ~name:"BFS distance consistent with a valid path" seed_arbitrary (fun seed ->
      let g = random_dag ~seed ~n:15 ~density:0.2 in
      let ok = ref true in
      for s = 0 to 14 do
        let dist = Bfs.distances g s in
        for t = 0 to 14 do
          match Bfs.shortest_path g ~source:s ~target:t with
          | None -> if dist.(t) <> Bfs.unreachable then ok := false
          | Some path ->
            if List.length path - 1 <> dist.(t) then ok := false;
            (* every consecutive pair must be an edge *)
            let rec edges = function
              | a :: (b :: _ as rest) ->
                if not (Digraph.mem_edge g a b) then ok := false;
                edges rest
              | [ _ ] | [] -> ()
            in
            edges path
        done
      done;
      !ok)

(* --- CSR transpose and BFS ------------------------------------------------- *)

let test_csr_reverse_empty () =
  let rev = Csr.reverse (Csr.of_graph (Digraph.of_edges ~vertex_count:0 [])) in
  check_int "vertices" 0 (Csr.vertex_count rev);
  check_int "edges" 0 (Csr.edge_count rev)

let test_csr_reverse_diamond () =
  let rev = Csr.reverse (Csr.of_graph (diamond ())) in
  check_int "edge count preserved" 4 (Csr.edge_count rev);
  Alcotest.(check (list int)) "succ 3 in reverse" [ 1; 2 ] (Csr.succ_list rev 3);
  Alcotest.(check (list int)) "succ 1 in reverse" [ 0 ] (Csr.succ_list rev 1);
  Alcotest.(check (list int)) "succ 0 in reverse" [] (Csr.succ_list rev 0)

let test_csr_reverse_multi_edge () =
  let g = Digraph.of_edges ~vertex_count:3 [ (0, 1); (0, 1); (2, 1) ] in
  let rev = Csr.reverse (Csr.of_graph g) in
  check_int "multi-edges kept" 3 (Csr.edge_count rev);
  Alcotest.(check (list int)) "both copies, sorted by source" [ 0; 0; 2 ]
    (Csr.succ_list rev 1)

let test_csr_double_reverse () =
  let csr = Csr.of_graph (diamond ()) in
  let back = Csr.reverse (Csr.reverse csr) in
  Alcotest.(check (array int)) "offsets" (Csr.offsets csr) (Csr.offsets back);
  Alcotest.(check (array int)) "targets" (Csr.targets csr) (Csr.targets back)

let prop_csr_reverse_transpose =
  qtest ~name:"Csr.reverse agrees with Digraph.reverse on random DAGs"
    seed_arbitrary (fun seed ->
      let g = random_dag ~seed ~n:15 ~density:0.25 in
      let rev = Csr.reverse (Csr.of_graph g) in
      let spec = Digraph.reverse g in
      let ok = ref (Csr.edge_count rev = Digraph.edge_count spec) in
      for v = 0 to 14 do
        if
          List.sort compare (Csr.succ_list rev v)
          <> List.sort compare (Digraph.succ spec v)
        then ok := false
      done;
      !ok)

let prop_bfs_distances_csr_agrees =
  qtest ~name:"Bfs.distances_csr matches Bfs.distances" seed_arbitrary
    (fun seed ->
      let g = random_dag ~seed ~n:15 ~density:0.25 in
      let csr = Csr.of_graph g in
      let ok = ref true in
      for s = 0 to 14 do
        if Bfs.distances_csr csr s <> Bfs.distances g s then ok := false
      done;
      !ok)

let prop_reverse_bfs_is_forward_distance =
  (* The trick the analysis context's distance maps rest on: one backward
     BFS from a target over the transpose gives every vertex's forward
     distance to that target. *)
  qtest ~name:"BFS on Csr.reverse gives distance-to-target" seed_arbitrary
    (fun seed ->
      let g = random_dag ~seed ~n:15 ~density:0.25 in
      let rev = Csr.reverse (Csr.of_graph g) in
      let ok = ref true in
      for target = 0 to 14 do
        let to_target = Bfs.distances_csr rev target in
        for v = 0 to 14 do
          if to_target.(v) <> (Bfs.distances g v).(target) then ok := false
        done
      done;
      !ok)

(* --- strongly connected components ---------------------------------------- *)

let test_scc_dag_trivial () =
  let g = diamond () in
  check_int "four singletons" 4 (List.length (Scc.components g));
  Alcotest.(check (list (list int))) "no nontrivial" [] (Scc.nontrivial g)

let test_scc_cycle () =
  let g = Digraph.of_edges ~vertex_count:4 [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  let nontrivial = Scc.nontrivial g in
  check_int "one loop" 1 (List.length nontrivial);
  Alcotest.(check (list int)) "loop members" [ 0; 1; 2 ] (List.sort compare (List.hd nontrivial))

let test_scc_self_loop () =
  let g = Digraph.of_edges ~vertex_count:2 [ (0, 0) ] in
  check_int "self loop is nontrivial" 1 (List.length (Scc.nontrivial g))

let test_scc_two_cycles () =
  let g =
    Digraph.of_edges ~vertex_count:6 [ (0, 1); (1, 0); (2, 3); (3, 4); (4, 2); (4, 5) ]
  in
  let loops = List.map (List.sort compare) (Scc.nontrivial g) in
  check_int "two loops" 2 (List.length loops);
  check_bool "01 loop found" true (List.mem [ 0; 1 ] loops);
  check_bool "234 loop found" true (List.mem [ 2; 3; 4 ] loops)

let test_scc_component_of_consistent () =
  let g = Digraph.of_edges ~vertex_count:4 [ (0, 1); (1, 0); (2, 3) ] in
  let comp = Scc.component_of g in
  check_int "0 and 1 together" comp.(0) comp.(1);
  check_bool "2 and 3 apart" true (comp.(2) <> comp.(3))

let prop_scc_partition =
  qtest ~name:"SCCs partition the vertex set" Helpers.seed_arbitrary (fun seed ->
      let rng = Rng.create ~seed in
      let n = 8 + (seed mod 12) in
      (* arbitrary directed graph, cycles allowed *)
      let edges = ref [] in
      for _ = 1 to 2 * n do
        edges := (Rng.int rng ~bound:n, Rng.int rng ~bound:n) :: !edges
      done;
      let g = Digraph.of_edges ~vertex_count:n !edges in
      let members = List.concat (Scc.components g) in
      List.length members = n && List.sort compare members = List.init n Fun.id)

let prop_scc_dag_all_singletons =
  qtest ~name:"every SCC of a DAG is a singleton" Helpers.seed_arbitrary (fun seed ->
      let g = random_dag ~seed ~n:15 ~density:0.2 in
      List.for_all
        (fun comp ->
          match comp with
          | [ _ ] -> true
          | [] | _ :: _ :: _ -> false)
        (Scc.components g))

let () =
  Alcotest.run "digraph"
    [
      ( "construction",
        [
          Alcotest.test_case "empty graph" `Quick test_empty;
          Alcotest.test_case "vertex and edge counts" `Quick test_counts;
          Alcotest.test_case "succ and pred" `Quick test_succ_pred;
          Alcotest.test_case "degrees" `Quick test_degrees;
          Alcotest.test_case "invalid vertex raises" `Quick test_invalid_vertex;
          Alcotest.test_case "invalid edge raises" `Quick test_invalid_edge;
          Alcotest.test_case "of_successors" `Quick test_of_successors;
          Alcotest.test_case "mem_edge" `Quick test_mem_edge;
          Alcotest.test_case "parallel edges kept" `Quick test_parallel_edges;
          Alcotest.test_case "reverse" `Quick test_reverse;
          Alcotest.test_case "sources and sinks" `Quick test_sources_sinks;
          Alcotest.test_case "edges round-trip" `Quick test_edges_roundtrip;
        ] );
      ( "topological",
        [
          Alcotest.test_case "diamond order" `Quick test_topo_diamond;
          Alcotest.test_case "cycle raises with members" `Quick test_topo_cycle;
          Alcotest.test_case "self loop detected" `Quick test_topo_self_loop;
          Alcotest.test_case "levels of diamond" `Quick test_levels_diamond;
          Alcotest.test_case "by_level buckets" `Quick test_by_level;
          Alcotest.test_case "is_topological_order spec" `Quick test_is_topological_order_spec;
          prop_topo_sort_valid;
          prop_levels_monotonic;
          prop_level_zero_iff_source;
        ] );
      ( "reachability",
        [
          Alcotest.test_case "forward sets" `Quick test_reach_forward;
          Alcotest.test_case "members and count" `Quick test_reach_members_count;
          Alcotest.test_case "backward set" `Quick test_reach_backward;
          Alcotest.test_case "multiple roots" `Quick test_reach_multi_root;
          Alcotest.test_case "output cone" `Quick test_output_cone;
          Alcotest.test_case "cone with unreachable sink" `Quick test_output_cone_unreachable;
          prop_reachability_transitive;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "distances" `Quick test_bfs_distances;
          Alcotest.test_case "distance option" `Quick test_bfs_distance_option;
          Alcotest.test_case "shortcut preferred" `Quick test_bfs_prefers_short_route;
          Alcotest.test_case "shortest path" `Quick test_bfs_shortest_path;
          Alcotest.test_case "invalid vertex" `Quick test_bfs_invalid_vertex;
          prop_bfs_distance_at_most_levels;
        ] );
      ( "csr",
        [
          Alcotest.test_case "reverse of empty graph" `Quick test_csr_reverse_empty;
          Alcotest.test_case "reverse of diamond" `Quick test_csr_reverse_diamond;
          Alcotest.test_case "reverse keeps multi-edges" `Quick test_csr_reverse_multi_edge;
          Alcotest.test_case "double reverse is identity" `Quick test_csr_double_reverse;
          prop_csr_reverse_transpose;
          prop_bfs_distances_csr_agrees;
          prop_reverse_bfs_is_forward_distance;
        ] );
      ( "scc",
        [
          Alcotest.test_case "DAG has only singletons" `Quick test_scc_dag_trivial;
          Alcotest.test_case "one cycle found" `Quick test_scc_cycle;
          Alcotest.test_case "self loop nontrivial" `Quick test_scc_self_loop;
          Alcotest.test_case "two separate cycles" `Quick test_scc_two_cycles;
          Alcotest.test_case "component_of consistency" `Quick test_scc_component_of_consistent;
          prop_scc_partition;
          prop_scc_dag_all_singletons;
        ] );
    ]
