(* Tests for the incremental re-analysis pipeline: Netlist.Analysis.apply_delta
   (patch vs rebuild, metered), Epp.Incremental plan geometry, and the master
   property — a chain of random Transform edits analyzed incrementally is
   bit-identical, per observation, to a cold whole-circuit sweep of the final
   circuit, on every engine rung (batch, kernel, reference).

   The cold side always runs on a CLONE of the post-edit circuit: apply_delta
   installs the patched analysis context on the shared circuit, and the whole
   point is to prove that context computes the same bits as one built from
   scratch. *)

open Helpers
open Netlist

let fresh_registry () =
  let m = Obs.Metrics.create () in
  Obs.Hooks.set_metrics m;
  m

(* Rebuild a structurally identical circuit through the Builder: same node
   order, hence the same ids and observation positions, but none of the
   original's memoized analysis state. *)
let clone c =
  let b = Builder.create ~name:(Circuit.name c) () in
  for v = 0 to Circuit.node_count c - 1 do
    let name = Circuit.node_name c v in
    match Circuit.node c v with
    | Circuit.Input -> Builder.add_input b name
    | Circuit.Ff { data } ->
      Builder.add_dff b ~q:name ~d:(Circuit.node_name c data)
    | Circuit.Gate { kind; fanins } ->
      Builder.add_gate b ~output:name ~kind
        (List.map (Circuit.node_name c) (Array.to_list fanins))
  done;
  List.iter
    (fun v -> Builder.add_output b (Circuit.node_name c v))
    (Circuit.outputs c);
  Builder.freeze b

(* A mid-size reconvergent DAG with flip-flops — big enough that a single
   edit leaves most sites clean, so the splice path actually runs. *)
let random_dag ~seed =
  let profile =
    Circuit_gen.Profiles.make
      ~name:(Printf.sprintf "inc%d" seed)
      ~inputs:6 ~outputs:4 ~ffs:2 ~gates:30
  in
  Circuit_gen.Random_dag.generate ~seed profile

let random_edit rng circuit =
  let n = Circuit.node_count circuit in
  let gates =
    List.filter (Circuit.is_gate circuit) (List.init n Fun.id)
  in
  let buffer () =
    Transform.insert_identity_delta circuit ~net:(Rng.int rng ~bound:n)
  in
  match Rng.int rng ~bound:5 with
  | 0 -> buffer ()
  | 1 -> Transform.split_fanout_delta circuit ~net:(Rng.int rng ~bound:n)
  | 2 when gates <> [] ->
    Transform.triplicate_delta circuit
      ~nodes:[ List.nth gates (Rng.int rng ~bound:(List.length gates)) ]
  | 3 when Circuit.output_count circuit >= 2 ->
    let k = Circuit.output_count circuit in
    Transform.permute_observations_delta circuit
      ~perm:(Array.init k (fun i -> (i + 1) mod k))
  | _ -> (
    match
      List.filter
        (fun v ->
          match Circuit.kind_of circuit v with
          | Some (Gate.And | Gate.Or | Gate.Nand | Gate.Nor) -> true
          | _ -> false)
        (List.init n Fun.id)
    with
    | [] -> buffer ()
    | eligible ->
      Transform.de_morgan_delta circuit
        ~gate:(List.nth eligible (Rng.int rng ~bound:(List.length eligible))))

(* --- rung selection --------------------------------------------------------- *)

type rung = Batch | Kernel | Reference

let rung_name = function
  | Batch -> "batch"
  | Kernel -> "kernel"
  | Reference -> "reference"

let force_reference _ _ = failwith "forced degrade to the reference rung"

let full_sweep ~rung engine =
  match rung with
  | Batch -> Epp.Supervisor.sweep_all ~domains:1 ~batch:Epp.Supervisor.Always engine
  | Kernel -> Epp.Supervisor.sweep_all ~domains:1 ~batch:Epp.Supervisor.Never engine
  | Reference ->
    Epp.Supervisor.sweep_all ~domains:1 ~batch:Epp.Supervisor.Never
      ~kernel:force_reference engine

let incremental_sweep ~rung plan ~prior engine =
  match rung with
  | Batch ->
    Epp.Incremental.sweep ~domains:1 ~batch:Epp.Supervisor.Always plan ~prior
      engine
  | Kernel ->
    Epp.Incremental.sweep ~domains:1 ~batch:Epp.Supervisor.Never plan ~prior
      engine
  | Reference ->
    Epp.Incremental.sweep ~domains:1 ~batch:Epp.Supervisor.Never
      ~kernel:force_reference plan ~prior engine

(* --- bit-exact comparison --------------------------------------------------- *)

let bits = Int64.bits_of_float

let same_entry (s1, e1) (s2, e2) =
  s1 = s2
  &&
  match (e1, e2) with
  | ( Epp.Supervisor.Analyzed { result = r1; _ },
      Epp.Supervisor.Analyzed { result = r2; _ } ) ->
    r1.Epp.Epp_engine.site = r2.Epp.Epp_engine.site
    && bits r1.Epp.Epp_engine.p_sensitized = bits r2.Epp.Epp_engine.p_sensitized
    && r1.Epp.Epp_engine.cone_size = r2.Epp.Epp_engine.cone_size
    && r1.Epp.Epp_engine.reached_outputs = r2.Epp.Epp_engine.reached_outputs
    && List.length r1.Epp.Epp_engine.per_observation
       = List.length r2.Epp.Epp_engine.per_observation
    && List.for_all2
         (fun (o1, p1) (o2, p2) -> o1 = o2 && bits p1 = bits p2)
         r1.Epp.Epp_engine.per_observation r2.Epp.Epp_engine.per_observation
  | Epp.Supervisor.Quarantined _, Epp.Supervisor.Quarantined _ -> true
  | _ -> false

let outcomes_identical (a : Epp.Supervisor.outcome) (b : Epp.Supervisor.outcome) =
  List.length a.entries = List.length b.entries
  && List.for_all2 same_entry a.entries b.entries

(* --- the master property ---------------------------------------------------- *)

let chain_bit_identical ~rung ~steps seed =
  with_repro ~build:(fun s -> random_dag ~seed:s) seed (fun c0 ->
      let rng = Rng.create ~seed:((seed * 7) + 1) in
      let engine0 = Epp.Epp_engine.create c0 in
      let outcome0 = full_sweep ~rung engine0 in
      let rec go i circuit engine (outcome : Epp.Supervisor.outcome) =
        if i > steps then true
        else begin
          let _, d = random_edit rng circuit in
          let engine', _how = Epp.Incremental.rebase engine d in
          let plan = Epp.Incremental.plan ~before:engine ~after:engine' d in
          let outcome' =
            incremental_sweep ~rung plan ~prior:outcome.entries engine'
          in
          let c' = Delta.after d in
          let cold = full_sweep ~rung (Epp.Epp_engine.create (clone c')) in
          if not (outcomes_identical outcome' cold) then
            QCheck2.Test.fail_report
              (Printf.sprintf
                 "rung %s, step %d: incremental outcome differs from the cold \
                  sweep (dirty %d/%d)"
                 (rung_name rung) i
                 (Epp.Incremental.dirty_count plan)
                 (Epp.Incremental.total plan))
          else go (i + 1) c' engine' outcome'
        end
      in
      go 1 c0 engine0 outcome0)

let prop_chain rung =
  qtest ~count:12
    ~name:
      (Printf.sprintf "5-edit chain is bit-identical to cold sweep (%s rung)"
         (rung_name rung))
    seed_arbitrary
    (fun seed -> chain_bit_identical ~rung ~steps:5 seed)

(* --- apply_delta: patch vs rebuild ------------------------------------------ *)

let test_apply_delta_patches_and_meters () =
  let m = fresh_registry () in
  let c = Circuit_gen.Embedded.s27 () in
  let analysis = Analysis.get c in
  let _, d = Transform.insert_identity_delta c ~net:(Circuit.find c "G11") in
  let analysis', how = Analysis.apply_delta analysis d in
  check_bool "buffer insertion patches in place" true (how = `Patched);
  check_bool "patched analysis is on the new circuit" true
    (Analysis.order analysis' <> Analysis.order analysis);
  let s = Obs.Metrics.snapshot m in
  check_int "patched metered" 1
    (Obs.Metrics.counter_value s "analysis.incremental.patched");
  check_int "no rebuild" 0
    (Obs.Metrics.counter_value s "analysis.incremental.rebuilt");
  (* The patched order is a valid topological order of the new circuit. *)
  let c' = Delta.after d in
  let order = Analysis.order analysis' in
  let pos = Array.make (Circuit.node_count c') (-1) in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  let ok = ref true in
  for v = 0 to Circuit.node_count c' - 1 do
    match Circuit.node c' v with
    | Circuit.Gate { fanins; _ } ->
      Array.iter (fun u -> if pos.(u) >= pos.(v) then ok := false) fanins
    | Circuit.Input | Circuit.Ff _ -> ()
  done;
  check_bool "patched order is topological" true !ok

let test_apply_delta_rebuilds_on_reorder () =
  (* g1 is redefined to read g2, which sits AFTER it in the old topological
     order — no order-preserving patch exists, so apply_delta must fall back
     to a full rebuild (and meter it). *)
  let build redefined =
    let b = Builder.create ~name:"reorder" () in
    Builder.add_input b "a";
    if redefined then Builder.add_gate b ~output:"g1" ~kind:Gate.Not [ "g2" ]
    else Builder.add_gate b ~output:"g1" ~kind:Gate.Not [ "a" ];
    Builder.add_gate b ~output:"g2" ~kind:Gate.Not [ "a" ];
    Builder.add_output b "g1";
    Builder.add_output b "g2";
    Builder.freeze b
  in
  let m = fresh_registry () in
  let before = build false and after = build true in
  let d = Delta.structural_diff ~before ~after in
  let analysis = Analysis.get before in
  let _, how = Analysis.apply_delta analysis d in
  check_bool "dependency reversal forces a rebuild" true (how = `Rebuilt);
  let s = Obs.Metrics.snapshot m in
  check_int "rebuild metered" 1
    (Obs.Metrics.counter_value s "analysis.incremental.rebuilt");
  (* And the incremental sweep over that rebuilt analysis still matches a
     cold sweep bit-for-bit. *)
  let engine = Epp.Epp_engine.create before in
  let outcome = full_sweep ~rung:Kernel engine in
  let engine', how' = Epp.Incremental.rebase engine d in
  check_bool "rebase reports the rebuild" true (how' = `Rebuilt);
  let plan = Epp.Incremental.plan ~before:engine ~after:engine' d in
  let outcome' =
    incremental_sweep ~rung:Kernel plan ~prior:outcome.entries engine'
  in
  let cold = full_sweep ~rung:Kernel (Epp.Epp_engine.create (clone after)) in
  check_bool "still bit-identical after the rebuild" true
    (outcomes_identical outcome' cold)

let test_apply_delta_rejects_wrong_circuit () =
  let c = Circuit_gen.Embedded.s27 () in
  let other = Circuit_gen.Embedded.c17 () in
  let _, d = Transform.insert_identity_delta c ~net:0 in
  Alcotest.check_raises "delta from another circuit"
    (Invalid_argument
       "Analysis.apply_delta: delta's before-circuit is not this context's")
    (fun () -> ignore (Analysis.apply_delta (Analysis.get other) d))

(* --- plan geometry ---------------------------------------------------------- *)

(* Two disjoint blocks: an edit inside block A provably leaves every block-B
   site clean, so the partial-plan splice path is exercised deterministically
   (s27 is too small — any edit there dirties the whole circuit). *)
let two_blocks () =
  let b = Builder.create ~name:"two_blocks" () in
  Builder.add_input b "a1";
  Builder.add_input b "a2";
  Builder.add_input b "b1";
  Builder.add_input b "b2";
  Builder.add_gate b ~output:"ga1" ~kind:Gate.And [ "a1"; "a2" ];
  Builder.add_gate b ~output:"ga2" ~kind:Gate.Not [ "ga1" ];
  Builder.add_gate b ~output:"gb1" ~kind:Gate.Or [ "b1"; "b2" ];
  Builder.add_gate b ~output:"gb2" ~kind:Gate.Not [ "gb1" ];
  Builder.add_output b "ga2";
  Builder.add_output b "gb2";
  Builder.freeze b

let test_plan_is_partial_and_metered () =
  let m = fresh_registry () in
  let c = two_blocks () in
  let engine = Epp.Epp_engine.create c in
  let outcome = full_sweep ~rung:Kernel engine in
  let gate = Circuit.find c "ga1" in
  let _, d = Transform.triplicate_delta c ~nodes:[ gate ] in
  let engine', _ = Epp.Incremental.rebase engine d in
  let plan = Epp.Incremental.plan ~before:engine ~after:engine' d in
  check_bool "plan is not full-dirty" true (not (Epp.Incremental.is_full plan));
  check_bool "some sites dirty" true (Epp.Incremental.dirty_count plan > 0);
  check_bool "some sites clean" true
    (Epp.Incremental.dirty_count plan < Epp.Incremental.total plan);
  let outcome' =
    incremental_sweep ~rung:Kernel plan ~prior:outcome.entries engine'
  in
  check_bool "spliced entries counted as resumed" true
    (outcome'.stats.Epp.Diag.resumed > 0);
  let s = Obs.Metrics.snapshot m in
  check_bool "dirty_sites metered" true
    (Obs.Metrics.counter_value s "epp.incremental.dirty_sites" > 0);
  check_bool "clean_reused metered" true
    (Obs.Metrics.counter_value s "epp.incremental.clean_reused" > 0);
  (match Obs.Metrics.gauge_value s "epp.incremental.dirty_fraction" with
  | Some f -> check_bool "dirty_fraction gauge in (0, 1)" true (f > 0.0 && f < 1.0)
  | None -> Alcotest.fail "dirty_fraction gauge missing");
  (* The live registry's Prometheus exposition carries the incremental
     series and lints clean. *)
  let exposition = Obs.Prom.of_snapshot s in
  check_bool "prometheus exposition lints" true (Obs.Prom.lint exposition = Ok ());
  let contains needle =
    let nh = String.length exposition and nn = String.length needle in
    let rec at i =
      i + nn <= nh && (String.sub exposition i nn = needle || at (i + 1))
    in
    at 0
  in
  check_bool "exposition has epp_incremental_dirty_sites" true
    (contains "epp_incremental_dirty_sites");
  check_bool "exposition has epp_incremental_clean_reused" true
    (contains "epp_incremental_clean_reused");
  check_bool "exposition has epp_incremental_dirty_fraction" true
    (contains "epp_incremental_dirty_fraction")

let test_plan_degrades_to_full_on_new_observation () =
  (* Adding an observation point changes the observation interface length:
     no positional correspondence exists, so the plan must go full-dirty
     rather than splice results computed against the old interface. *)
  let c = Circuit_gen.Embedded.s27 () in
  let b = Builder.create ~name:(Circuit.name c) () in
  for v = 0 to Circuit.node_count c - 1 do
    let name = Circuit.node_name c v in
    match Circuit.node c v with
    | Circuit.Input -> Builder.add_input b name
    | Circuit.Ff { data } ->
      Builder.add_dff b ~q:name ~d:(Circuit.node_name c data)
    | Circuit.Gate { kind; fanins } ->
      Builder.add_gate b ~output:name ~kind
        (List.map (Circuit.node_name c) (Array.to_list fanins))
  done;
  List.iter
    (fun v -> Builder.add_output b (Circuit.node_name c v))
    (Circuit.outputs c);
  Builder.add_output b "G8";
  let after = Builder.freeze b in
  let d = Delta.structural_diff ~before:c ~after in
  let engine = Epp.Epp_engine.create c in
  let outcome = full_sweep ~rung:Kernel engine in
  let engine', _ = Epp.Incremental.rebase engine d in
  let plan = Epp.Incremental.plan ~before:engine ~after:engine' d in
  check_bool "new PO degrades the plan to full" true
    (Epp.Incremental.is_full plan);
  (* Full-dirty still produces the right bits (nothing is spliced). *)
  let outcome' =
    incremental_sweep ~rung:Kernel plan ~prior:outcome.entries engine'
  in
  check_int "nothing resumed on a full plan" 0 outcome'.stats.Epp.Diag.resumed;
  let cold = full_sweep ~rung:Kernel (Epp.Epp_engine.create (clone after)) in
  check_bool "full plan matches cold sweep" true (outcomes_identical outcome' cold)

let () =
  Alcotest.run "incremental"
    [
      ( "apply_delta",
        [
          Alcotest.test_case "patch + meter" `Quick
            test_apply_delta_patches_and_meters;
          Alcotest.test_case "rebuild on dependency reversal" `Quick
            test_apply_delta_rebuilds_on_reorder;
          Alcotest.test_case "wrong circuit rejected" `Quick
            test_apply_delta_rejects_wrong_circuit;
        ] );
      ( "plan",
        [
          Alcotest.test_case "partial plan, metered + prom" `Quick
            test_plan_is_partial_and_metered;
          Alcotest.test_case "full on new observation" `Quick
            test_plan_degrades_to_full_on_new_observation;
        ] );
      ( "bit identity",
        [ prop_chain Batch; prop_chain Kernel; prop_chain Reference ] );
    ]
