(* Tests for the supervised sweep: the degradation ladder (batch -> kernel ->
   reference -> quarantine), the numeric sentinels, and the checkpoint
   kill/resume round trip.

   Fault injection is deterministic: hostile sites are poisoned through the
   supervisor's kernel/reference override seam (a stub raising or returning
   defective results), or by mutating the engine's sp vector after creation
   (the post-validation corruption a long-lived batch job might suffer). *)

open Helpers
open Netlist

exception Killed
(** simulates the sweep process dying mid-run (raised from [on_chunk]) *)

let bits = Int64.bits_of_float

(* Bit-identical comparison of two site results. *)
let same_result (a : Epp.Epp_engine.site_result) (b : Epp.Epp_engine.site_result) =
  a.Epp.Epp_engine.site = b.Epp.Epp_engine.site
  && bits a.Epp.Epp_engine.p_sensitized = bits b.Epp.Epp_engine.p_sensitized
  && a.Epp.Epp_engine.cone_size = b.Epp.Epp_engine.cone_size
  && a.Epp.Epp_engine.reached_outputs = b.Epp.Epp_engine.reached_outputs
  && List.for_all2
       (fun (o1, p1) (o2, p2) -> o1 = o2 && bits p1 = bits p2)
       a.Epp.Epp_engine.per_observation b.Epp.Epp_engine.per_observation

let test_circuit () =
  Circuit_gen.Random_dag.generate ~seed:5 Circuit_gen.Profiles.s344

(* A clean sweep is all-kernel, quarantine-free, and bit-identical to the
   unsupervised batch path. *)
let test_clean_sweep () =
  let c = test_circuit () in
  let engine = Epp.Epp_engine.create c in
  let unsupervised = Epp.Epp_engine.analyze_all engine in
  let outcome = Epp.Supervisor.sweep_all ~domains:3 ~chunk_size:37 engine in
  let stats = outcome.Epp.Supervisor.stats in
  check_int "total" (Circuit.node_count c) stats.Epp.Diag.total;
  check_int "all kernel" (Circuit.node_count c) stats.Epp.Diag.kernel_ok;
  check_int "none degraded" 0 stats.Epp.Diag.degraded;
  check_int "none quarantined" 0 stats.Epp.Diag.quarantined;
  check_bool "bit-identical to unsupervised" true
    (List.for_all2 same_result unsupervised (Epp.Supervisor.results outcome))

(* Kernel stub raising on k sites: those degrade to the reference path and
   still produce the unsupervised results, everything stays analyzed. *)
let test_degrade_to_reference () =
  let c = test_circuit () in
  let engine = Epp.Epp_engine.create c in
  let n = Circuit.node_count c in
  let poisoned = [ 3; n / 2; n - 1 ] in
  let kernel ws site =
    if List.mem site poisoned then failwith "injected kernel fault"
    else Epp.Epp_engine.Workspace.analyze_site ws site
  in
  let unsupervised = Epp.Epp_engine.analyze_all engine in
  let outcome = Epp.Supervisor.sweep_all ~domains:3 ~kernel engine in
  let stats = outcome.Epp.Supervisor.stats in
  check_int "degraded = k" (List.length poisoned) stats.Epp.Diag.degraded;
  check_int "none quarantined" 0 stats.Epp.Diag.quarantined;
  check_bool "degraded results match the reference bit-identically" true
    (List.for_all2 same_result unsupervised (Epp.Supervisor.results outcome));
  List.iter
    (fun (site, entry) ->
      match entry with
      | Epp.Supervisor.Analyzed { step; _ } ->
        check_bool
          (Printf.sprintf "site %d on the right rung" site)
          true
          (if List.mem site poisoned then step = Epp.Diag.Reference
           else step = Epp.Diag.Kernel)
      | Epp.Supervisor.Quarantined _ -> Alcotest.fail "unexpected quarantine")
    outcome.Epp.Supervisor.entries

(* A NaN in the kernel's published result trips the sentinel (no exception
   involved) and degrades; so does an out-of-range probability. *)
let test_sentinel_trips () =
  let c = test_circuit () in
  let engine = Epp.Epp_engine.create c in
  let defective p (r : Epp.Epp_engine.site_result) =
    { r with Epp.Epp_engine.p_sensitized = p }
  in
  let kernel ws site =
    let r = Epp.Epp_engine.Workspace.analyze_site ws site in
    if site = 1 then defective Float.nan r
    else if site = 2 then defective 2.5 r
    else r
  in
  let outcome = Epp.Supervisor.sweep_all ~domains:1 ~kernel engine in
  let stats = outcome.Epp.Supervisor.stats in
  check_int "both sentinel trips degraded" 2 stats.Epp.Diag.degraded;
  check_int "none quarantined" 0 stats.Epp.Diag.quarantined

(* Both rungs poisoned: exactly k quarantines with a typed fault per rung,
   and every other site bit-identical to the unsupervised sweep. *)
let test_quarantine_exactly_k () =
  let c = test_circuit () in
  let engine = Epp.Epp_engine.create c in
  let n = Circuit.node_count c in
  let poisoned = [ 0; 7; n - 2 ] in
  let poison site = List.mem site poisoned in
  let kernel ws site =
    if poison site then failwith "injected kernel fault"
    else Epp.Epp_engine.Workspace.analyze_site ws site
  in
  let reference engine site =
    if poison site then failwith "injected reference fault"
    else Epp.Epp_engine.analyze_site engine site
  in
  let unsupervised = Epp.Epp_engine.analyze_all engine in
  let outcome = Epp.Supervisor.sweep_all ~domains:3 ~kernel ~reference engine in
  let qs = Epp.Supervisor.quarantines outcome in
  check_int "exactly k quarantines" (List.length poisoned) (List.length qs);
  check_bool "quarantined the poisoned sites" true
    (List.for_all2 (fun q s -> q.Epp.Diag.site = s) qs poisoned);
  List.iter
    (fun (q : Epp.Diag.quarantine) ->
      check_int "one fault per rung" 2 (List.length q.Epp.Diag.faults);
      check_bool "rungs in order, typed as exceptions" true
        (match q.Epp.Diag.faults with
        | [ (Epp.Diag.Kernel, Epp.Diag.Exception _);
            (Epp.Diag.Reference, Epp.Diag.Exception _) ] -> true
        | _ -> false);
      check_bool "cone size recorded" true (q.Epp.Diag.cone_size <> None))
    qs;
  let expected =
    List.filter
      (fun (r : Epp.Epp_engine.site_result) -> not (poison r.Epp.Epp_engine.site))
      unsupervised
  in
  check_bool "non-poisoned sites bit-identical" true
    (List.for_all2 same_result expected (Epp.Supervisor.results outcome))

(* Post-create sp corruption (the validation in create can no longer see it):
   affected sites fail on both rungs and are quarantined; the sweep finishes
   and the unaffected sites match a pre-corruption sweep bit-identically. *)
let test_hostile_sp_mutation () =
  let c = test_circuit () in
  let engine = Epp.Epp_engine.create ~sp:(Sigprob.Sp_topological.compute c) c in
  let before = Epp.Epp_engine.analyze_all engine in
  let victim = List.hd (Circuit.inputs c) in
  let sp = Epp.Epp_engine.signal_probabilities engine in
  sp.Sigprob.Sp.values.(victim) <- Float.nan;
  let outcome = Epp.Supervisor.sweep_all ~domains:3 engine in
  let qs = Epp.Supervisor.quarantines outcome in
  check_bool "some sites quarantined" true (qs <> []);
  (* The poisoned node feeds NaN only into cones that consume it off-path;
     every simultaneously-failing site must be quarantined, none analyzed. *)
  let affected =
    List.filter
      (fun site ->
        match Epp.Epp_engine.analyze_site engine site with
        | r ->
          Float.is_nan r.Epp.Epp_engine.p_sensitized
          || List.exists (fun (_, p) -> Float.is_nan p) r.Epp.Epp_engine.per_observation
        | exception _ -> true)
      (List.init (Circuit.node_count c) Fun.id)
  in
  check_int "exactly the affected sites are quarantined" (List.length affected)
    (List.length qs);
  let survivors =
    List.filter
      (fun (r : Epp.Epp_engine.site_result) ->
        not (List.mem r.Epp.Epp_engine.site affected))
      before
  in
  check_bool "unaffected sites bit-identical to the pre-corruption sweep" true
    (List.for_all2 same_result survivors (Epp.Supervisor.results outcome))

(* A forced-batch clean sweep runs every site on the batch rung and is
   bit-identical to the unsupervised per-site sweep. *)
let test_batch_clean_sweep () =
  let c = test_circuit () in
  let engine = Epp.Epp_engine.create c in
  let n = Circuit.node_count c in
  let unsupervised = Epp.Epp_engine.analyze_all engine in
  let outcome =
    Epp.Supervisor.sweep_all ~domains:3 ~chunk_size:100 ~batch:Epp.Supervisor.Always
      engine
  in
  let stats = outcome.Epp.Supervisor.stats in
  check_int "all batch" n stats.Epp.Diag.batch_ok;
  check_int "no kernel" 0 stats.Epp.Diag.kernel_ok;
  check_int "none degraded" 0 stats.Epp.Diag.degraded;
  check_int "none quarantined" 0 stats.Epp.Diag.quarantined;
  check_bool "bit-identical to unsupervised" true
    (List.for_all2 same_result unsupervised (Epp.Supervisor.results outcome))

(* [batch:Never] keeps even a batchable sweep on the per-site ladder, and a
   Naive-mode engine can never take the batch rung regardless of the mode. *)
let test_batch_opt_out () =
  let c = test_circuit () in
  let engine = Epp.Epp_engine.create c in
  let outcome =
    Epp.Supervisor.sweep_all ~batch:Epp.Supervisor.Never engine
  in
  check_int "never: no batch" 0 outcome.Epp.Supervisor.stats.Epp.Diag.batch_ok;
  let naive = Epp.Epp_engine.create ~mode:Epp.Epp_engine.Naive c in
  let outcome =
    Epp.Supervisor.sweep_all ~batch:Epp.Supervisor.Always naive
  in
  let stats = outcome.Epp.Supervisor.stats in
  check_int "naive: no batch" 0 stats.Epp.Diag.batch_ok;
  check_int "naive: all kernel" (Circuit.node_count c) stats.Epp.Diag.kernel_ok

(* Per-lane quarantine injection through the [batch_run] seam: poisoned
   lanes degrade to the kernel rung alone — their block-mates stay on the
   batch rung — and every site still gets the unsupervised result. *)
let test_batch_lane_degrades_alone () =
  let c = test_circuit () in
  let engine = Epp.Epp_engine.create c in
  let n = Circuit.node_count c in
  let poisoned = [ 3; n / 2; n - 1 ] in
  let batch_run block sites =
    let results = Epp.Epp_batch.Block.run block sites in
    Array.mapi
      (fun l r ->
        if List.mem sites.(l) poisoned then Error (Failure "injected lane fault")
        else r)
      results
  in
  let unsupervised = Epp.Epp_engine.analyze_all engine in
  let outcome =
    Epp.Supervisor.sweep_all ~domains:3 ~batch:Epp.Supervisor.Always ~batch_run
      engine
  in
  let stats = outcome.Epp.Supervisor.stats in
  check_int "healthy lanes stay batched" (n - List.length poisoned)
    stats.Epp.Diag.batch_ok;
  check_int "poisoned lanes on the kernel rung" (List.length poisoned)
    stats.Epp.Diag.kernel_ok;
  check_int "none quarantined" 0 stats.Epp.Diag.quarantined;
  check_bool "all sites bit-identical to unsupervised" true
    (List.for_all2 same_result unsupervised (Epp.Supervisor.results outcome));
  List.iter
    (fun (site, entry) ->
      match entry with
      | Epp.Supervisor.Analyzed { step; _ } ->
        check_bool
          (Printf.sprintf "site %d on the right rung" site)
          true
          (if List.mem site poisoned then step = Epp.Diag.Kernel
           else step = Epp.Diag.Batch)
      | Epp.Supervisor.Quarantined _ -> Alcotest.fail "unexpected quarantine")
    outcome.Epp.Supervisor.entries

(* All three rungs poisoned for one site: the quarantine record carries one
   typed fault per rung, in ladder order batch -> kernel -> reference. *)
let test_batch_full_ladder_quarantine () =
  let c = test_circuit () in
  let engine = Epp.Epp_engine.create c in
  let n = Circuit.node_count c in
  let victim = n / 3 in
  let batch_run block sites =
    let results = Epp.Epp_batch.Block.run block sites in
    Array.mapi
      (fun l r ->
        if sites.(l) = victim then Error (Failure "injected batch fault") else r)
      results
  in
  let kernel ws site =
    if site = victim then failwith "injected kernel fault"
    else Epp.Epp_engine.Workspace.analyze_site ws site
  in
  let reference engine site =
    if site = victim then failwith "injected reference fault"
    else Epp.Epp_engine.analyze_site engine site
  in
  let outcome =
    Epp.Supervisor.sweep_all ~batch:Epp.Supervisor.Always ~batch_run ~kernel
      ~reference engine
  in
  let stats = outcome.Epp.Supervisor.stats in
  check_int "one quarantine" 1 stats.Epp.Diag.quarantined;
  check_int "everyone else batched" (n - 1) stats.Epp.Diag.batch_ok;
  match Epp.Supervisor.quarantines outcome with
  | [ q ] ->
    check_int "the victim" victim q.Epp.Diag.site;
    check_bool "one fault per rung, in ladder order" true
      (match q.Epp.Diag.faults with
      | [ (Epp.Diag.Batch, Epp.Diag.Exception _);
          (Epp.Diag.Kernel, Epp.Diag.Exception _);
          (Epp.Diag.Reference, Epp.Diag.Exception _) ] -> true
      | _ -> false)
  | qs -> Alcotest.fail (Printf.sprintf "expected 1 quarantine, got %d" (List.length qs))

(* A whole-block batch failure (the run itself raises) degrades every lane
   of that block to the per-site ladder; the sweep still completes with
   every site analyzed. *)
let test_batch_whole_block_failure () =
  let c = test_circuit () in
  let engine = Epp.Epp_engine.create c in
  let n = Circuit.node_count c in
  let batch_run _block _sites = failwith "injected block fault" in
  let unsupervised = Epp.Epp_engine.analyze_all engine in
  let outcome =
    Epp.Supervisor.sweep_all ~batch:Epp.Supervisor.Always ~batch_run engine
  in
  let stats = outcome.Epp.Supervisor.stats in
  check_int "no batch survivors" 0 stats.Epp.Diag.batch_ok;
  check_int "every lane degraded to kernel" n stats.Epp.Diag.kernel_ok;
  check_int "none quarantined" 0 stats.Epp.Diag.quarantined;
  check_bool "results still bit-identical" true
    (List.for_all2 same_result unsupervised (Epp.Supervisor.results outcome))

(* An out-of-range site id in the input is quarantined, not fatal. *)
let test_bad_site_quarantined () =
  let c = fig1 () in
  let engine = Epp.Epp_engine.create c in
  let outcome = Epp.Supervisor.sweep ~domains:1 engine [ 0; 999; 1 ] in
  check_int "two analyzed" 2 (List.length (Epp.Supervisor.results outcome));
  match Epp.Supervisor.quarantines outcome with
  | [ q ] ->
    check_int "the bad site" 999 q.Epp.Diag.site;
    check_bool "no cone size for an invalid site" true (q.Epp.Diag.cone_size = None)
  | qs -> Alcotest.fail (Printf.sprintf "expected 1 quarantine, got %d" (List.length qs))

(* Kill mid-run (on_chunk raises after the checkpoint write), then resume:
   the merged report is bit-identical to an uninterrupted sweep and the
   resumed count matches what the snapshot held. *)
let test_kill_resume_round_trip () =
  let c = test_circuit () in
  let engine = Epp.Epp_engine.create c in
  let path = Filename.temp_file "serprop_ck" ".txt" in
  let fp = Report.Checkpoint.fingerprint engine in
  let n = Circuit.node_count c in
  let saved = ref [] in
  let kill_after = 3 in
  let chunks = ref 0 in
  (try
     ignore
       (Epp.Supervisor.sweep ~domains:2 ~chunk_size:16
          ~on_chunk:(fun ~done_count:_ ~total:_ entries ->
            saved := entries @ !saved;
            Report.Checkpoint.save path
              {
                Report.Checkpoint.fingerprint = fp;
                total_sites = n;
                entries = List.sort compare !saved;
              };
            incr chunks;
            if !chunks = kill_after then raise Killed)
          engine
          (List.init n Fun.id));
     Alcotest.fail "sweep should have been killed"
   with Killed -> ());
  let partial = kill_after * 16 in
  let clean = Epp.Supervisor.sweep_all ~domains:2 engine in
  match Report.Checkpoint.supervised_sweep ~domains:2 ~chunk_size:16
          ~checkpoint:path ~resume:true engine
  with
  | Error e -> Alcotest.fail (Report.Checkpoint.error_message e)
  | Ok resumed ->
    check_int "resumed sites" partial resumed.Epp.Supervisor.stats.Epp.Diag.resumed;
    check_int "all sites present" n
      (List.length resumed.Epp.Supervisor.entries);
    check_bool "identical final report" true
      (List.for_all2 same_result
         (Epp.Supervisor.results clean)
         (Epp.Supervisor.results resumed));
    Sys.remove path

(* --- deadline ------------------------------------------------------------- *)

(* A kernel slow enough that a small budget expires mid-sweep.  domains:1
   keeps dispatch sequential, so the finished entries are exactly a prefix
   of the input order and the assertions are deterministic. *)
let slow_kernel ws site =
  Unix.sleepf 0.002;
  Epp.Epp_engine.Workspace.analyze_site ws site

let test_deadline_partial_prefix () =
  let c = test_circuit () in
  let engine = Epp.Epp_engine.create c in
  let n = Circuit.node_count c in
  let unsupervised = Array.of_list (Epp.Epp_engine.analyze_all engine) in
  let outcome =
    Epp.Supervisor.sweep ~domains:1 ~chunk_size:8 ~kernel:slow_kernel
      ~deadline:(Obs.Deadline.after ~seconds:0.05)
      engine (List.init n Fun.id)
  in
  match outcome.Epp.Supervisor.completion with
  | Epp.Diag.Complete -> Alcotest.fail "expected the deadline to expire"
  | Epp.Diag.Deadline_expired { analyzed; remaining; budget_seconds } ->
    check_bool "some sites finished" true (analyzed >= 1);
    check_bool "not all sites finished" true (analyzed < n);
    check_int "analyzed + remaining covers the request" n (analyzed + remaining);
    check_float "budget recorded" 0.05 budget_seconds;
    check_int "every finished entry is kept" analyzed
      (List.length outcome.Epp.Supervisor.entries);
    check_int "stats count the finished subset" analyzed
      outcome.Epp.Supervisor.stats.Epp.Diag.total;
    List.iteri
      (fun i (site, entry) ->
        check_int "finished entries form the input-order prefix" i site;
        match entry with
        | Epp.Supervisor.Analyzed { result; _ } ->
          check_bool "finished entry bit-identical to unsupervised" true
            (same_result unsupervised.(site) result)
        | Epp.Supervisor.Quarantined _ -> Alcotest.fail "unexpected quarantine")
      outcome.Epp.Supervisor.entries

(* An already-expired budget: nothing starts, nothing raises. *)
let test_deadline_zero_budget () =
  let c = test_circuit () in
  let engine = Epp.Epp_engine.create c in
  let n = Circuit.node_count c in
  let outcome =
    Epp.Supervisor.sweep_all ~domains:2
      ~deadline:(Obs.Deadline.of_budget_ms 0.0) engine
  in
  check_int "no entries" 0 (List.length outcome.Epp.Supervisor.entries);
  match outcome.Epp.Supervisor.completion with
  | Epp.Diag.Deadline_expired { analyzed = 0; remaining; _ } ->
    check_int "everything remains" n remaining
  | _ -> Alcotest.fail "expected an immediate expiry with nothing analyzed"

let test_no_deadline_complete () =
  let c = test_circuit () in
  let engine = Epp.Epp_engine.create c in
  let implicit = Epp.Supervisor.sweep_all ~domains:2 engine in
  check_bool "no deadline completes" true
    (implicit.Epp.Supervisor.completion = Epp.Diag.Complete);
  let generous =
    Epp.Supervisor.sweep_all ~domains:2
      ~deadline:(Obs.Deadline.after ~seconds:3600.0) engine
  in
  check_bool "a generous deadline completes" true
    (generous.Epp.Supervisor.completion = Epp.Diag.Complete)

(* The budget cuts a checkpointed sweep short; a later resume without a
   deadline replays the finished prefix and completes bit-identically. *)
let test_deadline_then_resume () =
  let c = test_circuit () in
  let engine = Epp.Epp_engine.create c in
  let n = Circuit.node_count c in
  let path = Filename.temp_file "serprop_deadline" ".ck" in
  let analyzed =
    match
      Report.Checkpoint.supervised_sweep ~domains:1 ~chunk_size:8
        ~checkpoint:path ~kernel:slow_kernel
        ~deadline:(Obs.Deadline.after ~seconds:0.05) engine
    with
    | Error e -> Alcotest.fail (Report.Checkpoint.error_message e)
    | Ok o -> (
      match o.Epp.Supervisor.completion with
      | Epp.Diag.Deadline_expired { analyzed; _ } ->
        check_int "partial entries snapshotted" analyzed
          (List.length o.Epp.Supervisor.entries);
        analyzed
      | Epp.Diag.Complete -> Alcotest.fail "expected the deadline to expire")
  in
  check_bool "the budget cut the sweep short" true (analyzed >= 1 && analyzed < n);
  let clean = Epp.Supervisor.sweep_all ~domains:2 engine in
  (match
     Report.Checkpoint.supervised_sweep ~domains:2 ~checkpoint:path
       ~resume:true engine
   with
  | Error e -> Alcotest.fail (Report.Checkpoint.error_message e)
  | Ok resumed ->
    check_bool "resume completes" true
      (resumed.Epp.Supervisor.completion = Epp.Diag.Complete);
    check_int "the finished prefix is replayed, not re-analyzed" analyzed
      resumed.Epp.Supervisor.stats.Epp.Diag.resumed;
    check_int "all sites present" n (List.length resumed.Epp.Supervisor.entries);
    check_bool "identical final report" true
      (List.for_all2 same_result
         (Epp.Supervisor.results clean)
         (Epp.Supervisor.results resumed)));
  Sys.remove path

let () =
  Alcotest.run "supervisor"
    [
      ( "ladder",
        [
          Alcotest.test_case "clean sweep" `Quick test_clean_sweep;
          Alcotest.test_case "degrade to reference" `Quick test_degrade_to_reference;
          Alcotest.test_case "sentinel trips" `Quick test_sentinel_trips;
          Alcotest.test_case "exactly k quarantines" `Quick test_quarantine_exactly_k;
          Alcotest.test_case "hostile sp mutation" `Quick test_hostile_sp_mutation;
          Alcotest.test_case "bad site quarantined" `Quick test_bad_site_quarantined;
        ] );
      ( "batch rung",
        [
          Alcotest.test_case "clean batch sweep" `Quick test_batch_clean_sweep;
          Alcotest.test_case "opt-out modes" `Quick test_batch_opt_out;
          Alcotest.test_case "lane degrades alone" `Quick test_batch_lane_degrades_alone;
          Alcotest.test_case "full-ladder quarantine" `Quick
            test_batch_full_ladder_quarantine;
          Alcotest.test_case "whole-block failure" `Quick
            test_batch_whole_block_failure;
        ] );
      ( "checkpoint",
        [ Alcotest.test_case "kill/resume round trip" `Quick test_kill_resume_round_trip ] );
      ( "deadline",
        [
          Alcotest.test_case "partial prefix kept" `Quick
            test_deadline_partial_prefix;
          Alcotest.test_case "zero budget" `Quick test_deadline_zero_budget;
          Alcotest.test_case "no deadline completes" `Quick
            test_no_deadline_complete;
          Alcotest.test_case "expire then resume" `Quick
            test_deadline_then_resume;
        ] );
    ]
