(* In-process tests for the serd request engine (Service.Server): typed
   decode rejections, per-request fault isolation, the warmed-engine
   cache, deadline partials, the serve loop's overload shedding, and
   checkpoint resume across a server restart.

   handle_line is the unit seam — everything except the transport; the
   serve-loop tests run the real loop over a socketpair against a client
   on a second domain. *)

module Json = Obs.Json
module Server = Service.Server

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let jstr key v = Option.bind (Json.member key v) Json.to_string_value
let jnum key v = Option.bind (Json.member key v) Json.to_number
let status v = Option.value ~default:"?" (jstr "status" v)

let error_code v =
  Option.value ~default:"?"
    (Option.bind (Json.member "error" v) (fun e -> jstr "code" e))

let stat key v =
  match Option.bind (Json.member "stats" v) (fun s -> jnum key s) with
  | Some x -> int_of_float x
  | None -> -1

(* Every test gets a fresh live registry: the cache counters and shed
   counters under test are process-global. *)
let fresh_registry () =
  let m = Obs.Metrics.create () in
  Obs.Hooks.set_metrics m;
  m

let reply server line =
  match Server.handle_line server line with
  | `Reply r -> r
  | `Shutdown _ -> Alcotest.fail "unexpected shutdown"

let analyze_s27 = {|{"op":"analyze","circuit":{"format":"embedded","source":"s27"}}|}

(* --- decode and fault isolation ------------------------------------------- *)

let test_typed_rejections () =
  ignore (fresh_registry ());
  let server = Server.create Server.default_config in
  let expect name code line =
    let r = reply server line in
    check_string (name ^ " status") "error" (status r);
    check_string (name ^ " code") code (error_code r)
  in
  expect "malformed JSON" "parse_error" "this is not json";
  expect "non-object" "bad_request" "[1,2,3]";
  expect "missing op" "bad_request" {|{"id":1}|};
  expect "unknown op" "unknown_op" {|{"op":"frobnicate"}|};
  expect "bad circuit" "bad_request" {|{"op":"analyze"}|};
  expect "bad format" "bad_request"
    {|{"op":"analyze","circuit":{"format":"vhdl","source":""}}|};
  expect "negative budget" "bad_request"
    {|{"op":"analyze","circuit":{"format":"embedded","source":"s27"},"budget_ms":-1}|};
  expect "broken netlist" "invalid_netlist"
    {|{"op":"analyze","circuit":{"format":"bench","source":"INPUT(broken"}}|};
  expect "unknown embedded" "invalid_netlist"
    {|{"op":"analyze","circuit":{"format":"embedded","source":"nope"}}|};
  expect "site out of range" "bad_request"
    {|{"op":"analyze","circuit":{"format":"embedded","source":"s27"},"sites":[99999]}|};
  (* The server still serves after every rejection. *)
  check_string "still alive" "ok" (status (reply server {|{"op":"ping"}|}))

let test_id_echo () =
  ignore (fresh_registry ());
  let server = Server.create Server.default_config in
  let r = reply server {|{"id":42,"op":"ping"}|} in
  check_bool "id echoed" true (jnum "id" r = Some 42.0);
  (* Echoed even when the request itself is rejected. *)
  let r = reply server {|{"id":43,"op":"frobnicate"}|} in
  check_bool "id echoed on error" true (jnum "id" r = Some 43.0)

let test_request_limits () =
  ignore (fresh_registry ());
  let server =
    Server.create
      { Server.default_config with max_source_bytes = 16; max_json_depth = 4 }
  in
  let r =
    reply server
      {|{"op":"analyze","circuit":{"format":"bench","source":"INPUT(a)\nINPUT(b)\nx = AND(a, b)\nOUTPUT(x)\n"}}|}
  in
  check_string "oversized source" "request_too_large" (error_code r);
  let deep = {|{"op":"ping","x":[[[[[[1]]]]]]}|} in
  check_string "over-deep request" "request_too_large"
    (error_code (reply server deep))

(* --- cache ----------------------------------------------------------------- *)

let test_cache_hit_skips_analysis () =
  let m = fresh_registry () in
  let server = Server.create Server.default_config in
  let r1 = reply server analyze_s27 in
  check_string "cold analyze" "ok" (status r1);
  check_bool "cold is a miss" true (jstr "cache" r1 = Some "miss");
  let r2 = reply server analyze_s27 in
  check_bool "repeat is a hit" true (jstr "cache" r2 = Some "hit");
  check_bool "same fingerprint" true
    (jstr "fingerprint" r1 = jstr "fingerprint" r2);
  let s = Obs.Metrics.snapshot m in
  check_int "one topological sort despite the repeat" 1
    (Obs.Metrics.counter_value s "analysis.topo.computed");
  check_int "hit metered" 1
    (Obs.Metrics.counter_value s "analysis.cache.engine.hit");
  check_int "miss metered" 1
    (Obs.Metrics.counter_value s "analysis.cache.engine.miss")

let test_cache_eviction () =
  let m = fresh_registry () in
  let server =
    Server.create { Server.default_config with cache_capacity = 1 }
  in
  let analyze src =
    ignore
      (reply server
         (Printf.sprintf
            {|{"op":"analyze","circuit":{"format":"embedded","source":"%s"}}|}
            src))
  in
  (* Alternating two circuits through a one-slot cache: every request
     evicts the other, so no hit is ever served. *)
  analyze "s27";
  analyze "c17";
  analyze "s27";
  analyze "c17";
  let s = Obs.Metrics.snapshot m in
  check_int "no hits through a one-slot cache" 0
    (Obs.Metrics.counter_value s "analysis.cache.engine.hit");
  check_int "every request missed" 4
    (Obs.Metrics.counter_value s "analysis.cache.engine.miss")

(* --- deadlines ------------------------------------------------------------- *)

let test_zero_budget_partial () =
  ignore (fresh_registry ());
  let server = Server.create Server.default_config in
  let r =
    reply server
      {|{"op":"analyze","circuit":{"format":"embedded","source":"s27"},"sites":[0,1,2,3],"budget_ms":0}|}
  in
  check_string "partial, not an error" "partial" (status r);
  check_int "nothing analyzed" 0 (stat "total" r);
  check_bool "remainder reported" true
    (Option.bind (Json.member "deadline" r) (jnum "remaining") = Some 4.0);
  (* The config-level default budget applies when the request sets none. *)
  let strict =
    Server.create { Server.default_config with default_budget_ms = Some 0.0 }
  in
  let r =
    reply strict
      {|{"op":"analyze","circuit":{"format":"embedded","source":"s27"},"sites":[0,1]}|}
  in
  check_string "default budget applies" "partial" (status r);
  (* And a per-request budget overrides it. *)
  let r =
    reply strict
      {|{"op":"analyze","circuit":{"format":"embedded","source":"s27"},"sites":[0,1],"budget_ms":60000}|}
  in
  check_string "request budget overrides the default" "ok" (status r)

(* --- restart / resume ------------------------------------------------------ *)

let test_restart_resumes_checkpoint () =
  ignore (fresh_registry ());
  let dir = Filename.temp_file "serprop_serd" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let config = { Server.default_config with checkpoint_dir = Some dir } in
  let server1 = Server.create config in
  let r1 = reply server1 analyze_s27 in
  check_string "first server analyzes" "ok" (status r1);
  check_int "nothing resumed cold" 0 (stat "resumed" r1);
  let total = stat "total" r1 in
  (* A new server (fresh cache, same checkpoint dir) — the crash-restart
     shape without the subprocess. *)
  let server2 = Server.create config in
  let r2 = reply server2 analyze_s27 in
  check_string "second server answers" "ok" (status r2);
  check_int "every site replayed from the checkpoint" total (stat "resumed" r2);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let test_shutdown_ack () =
  ignore (fresh_registry ());
  let server = Server.create Server.default_config in
  match Server.handle_line server {|{"op":"shutdown"}|} with
  | `Shutdown r -> check_string "acknowledged" "ok" (status r)
  | `Reply _ -> Alcotest.fail "expected a shutdown"

(* --- introspection --------------------------------------------------------- *)

let test_request_ids () =
  ignore (fresh_registry ());
  let server = Server.create Server.default_config in
  let rid r = jstr "request_id" r in
  let r1 = reply server {|{"op":"ping"}|} in
  let r2 = reply server {|{"op":"ping"}|} in
  let r3 = reply server "this is not json" in
  check_bool "every reply carries a request_id" true
    (rid r1 <> None && rid r2 <> None && rid r3 <> None);
  check_bool "request ids are distinct per frame" true
    (rid r1 <> rid r2 && rid r2 <> rid r3 && rid r1 <> rid r3)

let test_stats_op () =
  ignore (fresh_registry ());
  let server = Server.create Server.default_config in
  ignore (reply server analyze_s27);
  let r = reply server {|{"id":7,"op":"stats"}|} in
  check_string "stats answers ok" "ok" (status r);
  check_bool "id echoed" true (jnum "id" r = Some 7.0);
  check_bool "uptime is nonnegative" true
    (match jnum "uptime_seconds" r with
    | Some u -> u >= 0.0
    | None -> false);
  check_bool "queue depth reported" true (jnum "queue_depth" r <> None);
  check_bool "requests counted" true
    (match jnum "requests" r with
    | Some n -> n >= 1.0
    | None -> false);
  check_bool "warmed engine resident" true
    (Option.bind (Json.member "engine_cache" r) (jnum "resident") = Some 1.0);
  check_bool "recorder figures reported" true
    (Option.bind (Json.member "recorder" r) (jnum "capacity")
     = Some (float_of_int Obs.Recorder.capacity)
    &&
    match Option.bind (Json.member "recorder" r) (jnum "recorded") with
    | Some n -> n > 0.0
    | None -> false)

let test_dump_op () =
  ignore (fresh_registry ());
  Obs.Recorder.clear ();
  let server = Server.create Server.default_config in
  let r1 = reply server {|{"op":"ping"}|} in
  let rid1 = Option.value ~default:"?" (jstr "request_id" r1) in
  let r = reply server {|{"op":"dump"}|} in
  check_string "dump answers ok" "ok" (status r);
  let events =
    Option.value ~default:[]
      (Option.bind (Json.member "recorder" r) @@ fun rec_ ->
       Option.bind (Json.member "events" rec_) Json.to_list)
  in
  check_bool "the ping's completion event is in the dump, correlated" true
    (List.exists
       (fun e ->
         jstr "event" e = Some "serd.request" && jstr "request_id" e = Some rid1)
       events)

(* --- edit ------------------------------------------------------------------ *)

(* Two disjoint blocks, so a buffer insertion in block A provably leaves
   block-B sites clean and the edit response must show spliced results. *)
let two_blocks_bench =
  {|{"op":"analyze","circuit":{"format":"bench","source":"INPUT(a1)\nINPUT(a2)\nINPUT(b1)\nINPUT(b2)\nga1 = AND(a1, a2)\nga2 = NOT(ga1)\ngb1 = OR(b1, b2)\ngb2 = NOT(gb1)\nOUTPUT(ga2)\nOUTPUT(gb2)\n"}}|}

let edit_req ~fp ~kind ~target =
  Printf.sprintf
    {|{"op":"edit","circuit":{"format":"fingerprint","source":"%s"},"edit":{"kind":"%s","target":"%s"}}|}
    fp kind target

let incr_field key r = Option.bind (Json.member "incremental" r) (jnum key)

let test_edit_op () =
  ignore (fresh_registry ());
  let server = Server.create Server.default_config in
  let r0 = reply server two_blocks_bench in
  check_string "base analyze" "ok" (status r0);
  let fp = Option.value ~default:"?" (jstr "fingerprint" r0) in
  let r1 = reply server (edit_req ~fp ~kind:"buffer" ~target:"ga1") in
  check_string "edit answers ok" "ok" (status r1);
  check_bool "base engine was resident" true (jstr "cache" r1 = Some "hit");
  check_bool "base fingerprint echoed" true
    (jstr "base_fingerprint" r1 = Some fp);
  let fp1 = Option.value ~default:"?" (jstr "fingerprint" r1) in
  check_bool "edit mints a fresh fingerprint" true (fp1 <> fp && fp1 <> "?");
  check_bool "edit echoed" true
    (match Json.member "edit" r1 with
    | Some e -> jstr "kind" e = Some "buffer" && jstr "target" e = Some "ga1"
    | None -> false);
  check_bool "analysis was patched, not rebuilt" true
    (Option.bind (Json.member "incremental" r1) (jstr "analysis")
    = Some "patched");
  check_bool "some sites re-swept" true
    (match incr_field "dirty_sites" r1 with Some n -> n > 0.0 | None -> false);
  check_bool "block-B results spliced from the base sweep" true
    (match incr_field "clean_reused" r1 with Some n -> n > 0.0 | None -> false);
  check_bool "dirty fraction strictly partial" true
    (match incr_field "dirty_fraction" r1 with
    | Some f -> f > 0.0 && f < 1.0
    | None -> false);
  (* Chaining: the post-edit engine is resident under fp1 and its complete
     outcome was remembered, so a second edit splices again. *)
  let r2 = reply server (edit_req ~fp:fp1 ~kind:"buffer" ~target:"gb1") in
  check_string "chained edit ok" "ok" (status r2);
  check_bool "chained edit splices too" true
    (match incr_field "clean_reused" r2 with Some n -> n > 0.0 | None -> false);
  (* Introspection reflects the edits. *)
  let s = reply server {|{"op":"stats"}|} in
  check_bool "stats counts the edits" true (jnum "edits" s = Some 2.0);
  check_bool "stats reports patched incremental analyses" true
    (match Option.bind (Json.member "incremental" s) (jnum "patched") with
    | Some n -> n >= 2.0
    | None -> false)

let test_edit_rejections () =
  ignore (fresh_registry ());
  let server = Server.create Server.default_config in
  let expect name code line =
    let r = reply server line in
    check_string (name ^ " status") "error" (status r);
    check_string (name ^ " code") code (error_code r)
  in
  (* Fingerprints name resident engines; an unknown one is a typed reject,
     not a parse attempt. *)
  expect "non-resident fingerprint" "bad_request"
    (edit_req ~fp:"deadbeef" ~kind:"buffer" ~target:"x");
  ignore (reply server two_blocks_bench);
  let fp =
    Option.value ~default:"?" (jstr "fingerprint" (reply server two_blocks_bench))
  in
  expect "unknown target" "bad_request"
    (edit_req ~fp ~kind:"buffer" ~target:"nope");
  expect "unknown edit kind" "bad_request"
    (edit_req ~fp ~kind:"frobnicate" ~target:"ga1");
  expect "de morgan on a NOT" "bad_request"
    (edit_req ~fp ~kind:"de_morgan" ~target:"ga2");
  expect "missing edit object" "bad_request"
    (Printf.sprintf
       {|{"op":"edit","circuit":{"format":"fingerprint","source":"%s"}}|} fp);
  (* And the fingerprint format stays analyze-only for unknown prints. *)
  expect "analyze by unknown fingerprint" "bad_request"
    {|{"op":"analyze","circuit":{"format":"fingerprint","source":"feedface"}}|};
  check_string "still alive" "ok" (status (reply server {|{"op":"ping"}|}))

let test_fault_injection_gate () =
  ignore (fresh_registry ());
  let inject_req =
    {|{"op":"analyze","circuit":{"format":"embedded","source":"s27"},"sites":[0,1,2],"inject_faults":[0]}|}
  in
  (* Default config: the field is an operational hazard, rejected typed. *)
  let server = Server.create Server.default_config in
  let r = reply server inject_req in
  check_string "injection rejected without the flag" "bad_request"
    (error_code r);
  (* Opted in: the injected site runs the full ladder into quarantine, and
     the incident is correlated to the reply's request id in the ring. *)
  Obs.Recorder.clear ();
  let server =
    Server.create { Server.default_config with allow_fault_injection = true }
  in
  let r = reply server inject_req in
  check_string "injected analyze still answers ok" "ok" (status r);
  check_int "exactly the injected site quarantined" 1 (stat "quarantined" r);
  check_int "the others analyzed" 2 (stat "kernel_ok" r);
  let rid = Option.value ~default:"?" (jstr "request_id" r) in
  check_bool "quarantine recorded under the reply's request id" true
    (List.exists
       (fun e ->
         e.Obs.Recorder.event = "supervisor.quarantine"
         && e.Obs.Recorder.request_id = Some rid)
       (Obs.Recorder.dump ()))

(* --- the serve loop over a socketpair -------------------------------------- *)

let with_serve_loop config f =
  let client_fd, server_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let server = Server.create config in
  let d =
    Domain.spawn (fun () ->
        let outcome = Server.serve server ~in_fd:server_fd ~out_fd:server_fd in
        (try Unix.close server_fd with Unix.Unix_error _ -> ());
        outcome)
  in
  let ic = Unix.in_channel_of_descr client_fd in
  let oc = Unix.out_channel_of_descr client_fd in
  let result = f ic oc in
  close_out_noerr oc;
  close_in_noerr ic;
  (result, Domain.join d)

let recv ic =
  match Json.parse (input_line ic) with
  | Ok v -> v
  | Error msg -> Alcotest.fail ("bad response: " ^ msg)

let test_serve_sheds_overload () =
  let m = fresh_registry () in
  let high_water = 2 and burst = 8 in
  let (pongs, shed), outcome =
    with_serve_loop
      { Server.default_config with queue_high_water = high_water }
      (fun ic oc ->
        (* Park the loop in a sleep, pile a burst behind it, then count
           answer kinds: everything is answered, the overflow is shed. *)
        Json.emit_line oc
          (Json.Obj
             [ ("op", Json.String "sleep"); ("seconds", Json.Number 0.2) ]);
        for i = 1 to burst do
          Json.emit_line oc
            (Json.Obj [ ("id", Json.int i); ("op", Json.String "ping") ])
        done;
        let pongs = ref 0 and shed = ref 0 in
        for _ = 0 to burst do
          let r = recv ic in
          match (status r, error_code r) with
          | "ok", _ -> if Json.member "slept" r = None then incr pongs
          | "error", "overloaded" -> incr shed
          | s, c -> Alcotest.fail (Printf.sprintf "unexpected %s/%s" s c)
        done;
        Json.emit_line oc (Json.Obj [ ("op", Json.String "shutdown") ]);
        ignore (recv ic);
        (!pongs, !shed))
  in
  check_bool "serve loop saw the shutdown" true (outcome = `Shutdown);
  check_int "every burst request answered" burst (pongs + shed);
  check_bool "overflow shed" true (shed >= burst - (2 * high_water));
  check_bool "some of the burst served" true (pongs >= 1);
  check_int "sheds metered" shed
    (Obs.Metrics.counter_value (Obs.Metrics.snapshot m) "serd.shed")

let test_serve_eof () =
  ignore (fresh_registry ());
  let pong, outcome =
    with_serve_loop Server.default_config (fun ic oc ->
        Json.emit_line oc (Json.Obj [ ("op", Json.String "ping") ]);
        let r = recv ic in
        status r)
  in
  check_string "served before EOF" "ok" pong;
  check_bool "EOF ends the loop cleanly" true (outcome = `Eof)

let () =
  Alcotest.run "serd"
    [
      ( "decode",
        [
          Alcotest.test_case "typed rejections" `Quick test_typed_rejections;
          Alcotest.test_case "id echo" `Quick test_id_echo;
          Alcotest.test_case "request limits" `Quick test_request_limits;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit skips analysis" `Quick
            test_cache_hit_skips_analysis;
          Alcotest.test_case "eviction" `Quick test_cache_eviction;
        ] );
      ( "deadline",
        [ Alcotest.test_case "zero budget partial" `Quick test_zero_budget_partial ] );
      ( "lifecycle",
        [
          Alcotest.test_case "restart resumes checkpoint" `Quick
            test_restart_resumes_checkpoint;
          Alcotest.test_case "shutdown ack" `Quick test_shutdown_ack;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "request ids" `Quick test_request_ids;
          Alcotest.test_case "stats op" `Quick test_stats_op;
          Alcotest.test_case "dump op" `Quick test_dump_op;
          Alcotest.test_case "fault-injection gate" `Quick
            test_fault_injection_gate;
        ] );
      ( "edit",
        [
          Alcotest.test_case "edit op round trip" `Quick test_edit_op;
          Alcotest.test_case "edit rejections" `Quick test_edit_rejections;
        ] );
      ( "serve loop",
        [
          Alcotest.test_case "sheds overload" `Quick test_serve_sheds_overload;
          Alcotest.test_case "clean EOF" `Quick test_serve_eof;
        ] );
    ]
