(* Tests for the analytical EPP engine: exactness on trees, agreement with
   the oracles under reconvergence, the ablation modes, and edge cases. *)

open Helpers
open Netlist

let uniform_engine c = Epp.Epp_engine.create ~sp:(Sigprob.Sp_topological.compute c) c

(* --- exactness on fanout-free circuits -------------------------------------- *)

(* On a tree every signal has one fanout, so there is no reconvergence and
   the analytical EPP must equal exhaustive enumeration at every site. *)
let prop_exact_on_trees =
  qtest ~count:40 ~name:"EPP equals exhaustive enumeration on trees (every site)"
    seed_arbitrary (fun seed ->
      let c = random_tree ~seed ~inputs:(3 + (seed mod 5)) in
      let engine = uniform_engine c in
      let ok = ref true in
      for site = 0 to Circuit.node_count c - 1 do
        let analytical = (Epp.Epp_engine.analyze_site engine site).Epp.Epp_engine.p_sensitized in
        let exact = (Fault_sim.Epp_exact.compute c site).Fault_sim.Epp_exact.p_sensitized in
        if Float.abs (analytical -. exact) > 1e-9 then ok := false
      done;
      !ok)

(* --- behaviour under reconvergence ------------------------------------------ *)

let test_cancellation_circuit_exact () =
  (* y = XOR(x, NOT(NOT x)): the error on x reconverges with equal polarity
     and cancels; the polarity rules see it, the naive rules cannot. *)
  let c = cancellation () in
  let x = Circuit.find c "x" in
  let polarity = uniform_engine c in
  let r = Epp.Epp_engine.analyze_site polarity x in
  check_float "polarity mode: cancelled" 0.0 r.Epp.Epp_engine.p_sensitized;
  let exact = Fault_sim.Epp_exact.compute c x in
  check_float "oracle agrees" 0.0 exact.Fault_sim.Epp_exact.p_sensitized;
  let naive =
    Epp.Epp_engine.create ~mode:Epp.Epp_engine.Naive ~sp:(Sigprob.Sp_topological.compute c) c
  in
  let rn = Epp.Epp_engine.analyze_site naive x in
  check_float "naive mode claims full propagation" 1.0 rn.Epp.Epp_engine.p_sensitized

let prop_close_to_oracle_on_random_dags =
  (* With reconvergent fanout the method is an approximation; the paper
     reports ~5% average difference on ISCAS'89-sized circuits.  Our
     19-node random DAGs are far denser in reconvergence than real
     netlists, so the bound is on the mean over a fixed seed population:
     tight enough to catch any rule or traversal bug (those show up as
     gaps near 1), deterministic so the suite never flakes on tail
     seeds. *)
  Alcotest.test_case "EPP close to exhaustive oracle on reconvergent DAGs" `Quick (fun () ->
      let grand_total = ref 0.0 and sites_seen = ref 0 in
      for seed = 1 to 40 do
        let c = random_small_dag ~seed in
        let engine = uniform_engine c in
        let n = Circuit.node_count c in
        for site = 0 to n - 1 do
          let analytical =
            (Epp.Epp_engine.analyze_site engine site).Epp.Epp_engine.p_sensitized
          in
          let exact = (Fault_sim.Epp_exact.compute c site).Fault_sim.Epp_exact.p_sensitized in
          grand_total := !grand_total +. Float.abs (analytical -. exact);
          incr sites_seen
        done
      done;
      let mean = !grand_total /. float_of_int !sites_seen in
      check_bool (Printf.sprintf "population mean gap %.4f < 0.10" mean) true (mean < 0.10))

(* --- structural edge cases --------------------------------------------------- *)

let test_po_driver_site () =
  let c = fig1 () in
  let engine = uniform_engine c in
  let r = Epp.Epp_engine.analyze_site engine (Circuit.find c "H") in
  check_float "driving the PO" 1.0 r.Epp.Epp_engine.p_sensitized

let test_unobservable_site () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_gate b ~output:"y" ~kind:Gate.Not [ "a" ];
  Builder.add_gate b ~output:"dead" ~kind:Gate.Buf [ "a" ];
  Builder.add_output b "y";
  let c = Builder.freeze b in
  let engine = uniform_engine c in
  let r = Epp.Epp_engine.analyze_site engine (Circuit.find c "dead") in
  check_float "no reachable output" 0.0 r.Epp.Epp_engine.p_sensitized;
  check_int "no observations" 0 r.Epp.Epp_engine.reached_outputs

let test_input_as_site () =
  (* Primary inputs are legal error sites (the paper considers all circuit
     nodes).  Site C propagates through OR H iff D = 0 and G = 0.  D and G
     are both functions of A, so they are *correlated* off-path signals: the
     engine's independence assumption gives
     P0(D) * P0(G) = 0.875 * 0.625 = 0.546875, while the exact answer is
     0.5 — a hand-sized instance of the method's documented approximation. *)
  let c = fig1 () in
  let engine = uniform_engine c in
  let r = Epp.Epp_engine.analyze_site engine (Circuit.find c "C") in
  check_float_eps 1e-12 "engine value (independence assumption)" 0.546875
    r.Epp.Epp_engine.p_sensitized;
  let exact = Fault_sim.Epp_exact.compute c (Circuit.find c "C") in
  check_float_eps 1e-12 "exact value" 0.5 exact.Fault_sim.Epp_exact.p_sensitized

let test_multi_output_psens_formula () =
  (* Two independent observation paths: P_sens = 1 - (1-p1)(1-p2). *)
  let b = Builder.create () in
  List.iter (Builder.add_input b) [ "x"; "m1"; "m2" ];
  Builder.add_gate b ~output:"y1" ~kind:Gate.And [ "x"; "m1" ];
  Builder.add_gate b ~output:"y2" ~kind:Gate.And [ "x"; "m2" ];
  Builder.add_output b "y1";
  Builder.add_output b "y2";
  let c = Builder.freeze b in
  let engine = uniform_engine c in
  let r = Epp.Epp_engine.analyze_site engine (Circuit.find c "x") in
  (match r.Epp.Epp_engine.per_observation with
  | [ (_, p1); (_, p2) ] ->
    check_float_eps 1e-12 "p1" 0.5 p1;
    check_float_eps 1e-12 "p2" 0.5 p2
  | _ -> Alcotest.fail "expected two observations");
  check_float_eps 1e-12 "product formula" 0.75 r.Epp.Epp_engine.p_sensitized;
  (* The independence product is exact here because the two masks are
     disjoint inputs. *)
  let exact = Fault_sim.Epp_exact.compute c (Circuit.find c "x") in
  check_float_eps 1e-9 "oracle" exact.Fault_sim.Epp_exact.p_sensitized
    r.Epp.Epp_engine.p_sensitized

let test_sequential_ff_cut () =
  (* In s27, an error at a gate driving only FF data inputs must be counted
     through the Ff_data observations. *)
  let c = Circuit_gen.Embedded.s27 () in
  let engine = Epp.Epp_engine.create c in
  let g10 = Circuit.find c "G10" in
  let r = Epp.Epp_engine.analyze_site engine g10 in
  (* G10 feeds DFF G5 directly: the error is always captured. *)
  check_float "captured by the FF" 1.0 r.Epp.Epp_engine.p_sensitized;
  check_bool "observation is an FF data input" true
    (List.exists
       (fun (obs, _) ->
         match obs with
         | Circuit.Ff_data _ -> true
         | Circuit.Po _ -> false)
       r.Epp.Epp_engine.per_observation)

let test_whole_circuit_ablation_identical () =
  let c = Circuit_gen.Embedded.s27 () in
  let sp = (Sigprob.Sp_sequential.compute c).Sigprob.Sp_sequential.result in
  let cone = Epp.Epp_engine.create ~sp c in
  let whole = Epp.Epp_engine.create ~restrict_to_cone:false ~sp c in
  for site = 0 to Circuit.node_count c - 1 do
    let a = (Epp.Epp_engine.analyze_site cone site).Epp.Epp_engine.p_sensitized in
    let b = (Epp.Epp_engine.analyze_site whole site).Epp.Epp_engine.p_sensitized in
    if Float.abs (a -. b) > 1e-12 then
      Alcotest.failf "ablation diverged at %s: %.6f vs %.6f" (Circuit.node_name c site) a b
  done

let test_foreign_sp_rejected () =
  let c1 = fig1 () and c2 = small_tree () in
  let sp2 = Sigprob.Sp_topological.compute c2 in
  Alcotest.check_raises "foreign sp"
    (Invalid_argument "Epp_engine.create: sp computed on a different circuit") (fun () ->
      ignore (Epp.Epp_engine.create ~sp:sp2 c1))

(* A provided sp vector with a NaN / out-of-range entry must be rejected at
   create, with the offending node named — not fed silently into the SoA
   kernel. *)
let test_invalid_sp_rejected () =
  let c = fig1 () in
  let poisoned value =
    let sp = Sigprob.Sp_topological.compute c in
    let values = Array.copy sp.Sigprob.Sp.values in
    let victim = Circuit.find c "B" in
    values.(victim) <- value;
    ({ Sigprob.Sp.circuit = c; values }, victim)
  in
  List.iter
    (fun bad ->
      let sp, victim = poisoned bad in
      match Epp.Epp_engine.create ~sp c with
      | _ -> Alcotest.failf "accepted sp value %h" bad
      | exception Epp.Epp_engine.Invalid_signal_probability { node; name; value }
        ->
        check_int "offending node id" victim node;
        check_string "offending node name" "B" name;
        check_bool "offending value carried" true
          (Int64.bits_of_float value = Int64.bits_of_float bad))
    [ Float.nan; 1.5; -0.25; Float.infinity; Float.neg_infinity ]

let test_analyze_all_covers_all () =
  let c = fig1 () in
  let engine = uniform_engine c in
  let all = Epp.Epp_engine.analyze_all engine in
  check_int "every node" (Circuit.node_count c) (List.length all)

let test_default_sp_sequential () =
  (* create without ~sp on a sequential circuit must use the fixpoint. *)
  let c = shift_register () in
  let engine = Epp.Epp_engine.create c in
  let sp = Epp.Epp_engine.signal_probabilities engine in
  check_float_eps 1e-9 "q2 at 0.5 from fixpoint" 0.5 (Sigprob.Sp.get_name sp "q2")

let prop_psens_is_probability =
  qtest ~count:30 ~name:"P_sensitized always in [0,1]" seed_arbitrary (fun seed ->
      let c = random_small_dag ~seed in
      let engine = uniform_engine c in
      List.for_all
        (fun (r : Epp.Epp_engine.site_result) ->
          r.Epp.Epp_engine.p_sensitized >= 0.0 && r.Epp.Epp_engine.p_sensitized <= 1.0)
        (Epp.Epp_engine.analyze_all engine))

let prop_psens_bounded_by_observations =
  qtest ~count:30 ~name:"max per-obs <= P_sens <= sum per-obs" seed_arbitrary (fun seed ->
      let c = random_small_dag ~seed in
      let engine = uniform_engine c in
      List.for_all
        (fun (r : Epp.Epp_engine.site_result) ->
          let per = List.map snd r.Epp.Epp_engine.per_observation in
          let maxp = List.fold_left Float.max 0.0 per in
          let sump = List.fold_left ( +. ) 0.0 per in
          r.Epp.Epp_engine.p_sensitized >= maxp -. 1e-9
          && r.Epp.Epp_engine.p_sensitized <= sump +. 1e-9)
        (Epp.Epp_engine.analyze_all engine))

let () =
  Alcotest.run "epp_engine"
    [
      ( "exactness",
        [
          prop_exact_on_trees;
          Alcotest.test_case "cancellation: polarity vs naive" `Quick
            test_cancellation_circuit_exact;
          prop_close_to_oracle_on_random_dags;
        ] );
      ( "structure",
        [
          Alcotest.test_case "PO driver" `Quick test_po_driver_site;
          Alcotest.test_case "unobservable site" `Quick test_unobservable_site;
          Alcotest.test_case "input as site" `Quick test_input_as_site;
          Alcotest.test_case "multi-output product formula" `Quick
            test_multi_output_psens_formula;
          Alcotest.test_case "FF cut in s27" `Quick test_sequential_ff_cut;
          Alcotest.test_case "whole-circuit ablation identical" `Quick
            test_whole_circuit_ablation_identical;
        ] );
      ( "api",
        [
          Alcotest.test_case "foreign sp rejected" `Quick test_foreign_sp_rejected;
          Alcotest.test_case "invalid sp rejected" `Quick test_invalid_sp_rejected;
          Alcotest.test_case "analyze_all covers all" `Quick test_analyze_all_covers_all;
          Alcotest.test_case "sequential default SP" `Quick test_default_sp_sequential;
          prop_psens_is_probability;
          prop_psens_bounded_by_observations;
        ] );
    ]
