(* Tier-1 tests for the conformance subsystem: the oracle registry and its
   agreement policies, corpus replay through the full panel, a bounded
   fixed-seed fuzz run, the metamorphic invariants on the embedded
   circuits, and the shrinker (driven through the supervisor's
   fault-injection seam). *)

open Helpers
open Netlist
module Oracle = Conformance.Oracle
module Fuzz = Conformance.Fuzz
module Shrinker = Conformance.Shrinker
module Corpus = Conformance.Corpus

(* --- agreement policies ------------------------------------------------------ *)

let test_policy_matrix () =
  let an = Oracle.reference () in
  let ex = Oracle.exact_enum () in
  let mc = Oracle.monte_carlo ~vectors:1024 () in
  let is = function
    | Some p -> p
    | None -> Alcotest.fail "expected a comparable pair"
  in
  let p = Oracle.policy ~envelope:0.1 ~z:3.0 in
  (match is (p an (Oracle.kernel ())) with
  | Oracle.Bitwise -> ()
  | _ -> Alcotest.fail "analytical pair must be bitwise");
  (match is (p ex (Oracle.exact_bdd ())) with
  | Oracle.Within eps -> check_bool "tight" true (eps <= 1e-6)
  | _ -> Alcotest.fail "exact pair must be Within");
  (match is (p ex an) with
  | Oracle.Envelope e -> check_float "envelope" 0.1 e
  | _ -> Alcotest.fail "exact vs analytical must be Envelope");
  (match is (p mc ex) with
  | Oracle.Wilson { slack; vectors; _ } ->
    check_float "no slack vs exact" 0.0 slack;
    check_int "vectors" 1024 vectors
  | _ -> Alcotest.fail "statistical vs exact must be Wilson");
  (match is (p mc an) with
  | Oracle.Wilson { slack; _ } -> check_float "slack = envelope" 0.1 slack
  | _ -> Alcotest.fail "statistical vs analytical must be Wilson");
  check_bool "statistical pair incomparable" true
    (p mc (Oracle.monte_carlo ~vectors:64 ()) = None)

let test_interval_policy_matrix () =
  (* The certified tier's pairings: interval-aware against analytical and
     exact oracles, incomparable against statistical ones. *)
  let cert = Oracle.certified () in
  let an = Oracle.reference () in
  let ex = Oracle.exact_enum () in
  let mc = Oracle.monte_carlo ~vectors:1024 () in
  let p = Oracle.policy ~envelope:0.1 ~z:3.0 in
  (match p cert an with
  | Some (Oracle.Interval { slack }) -> check_float "slack = envelope" 0.1 slack
  | _ -> Alcotest.fail "certified vs analytical must be Interval");
  (match p ex cert with
  | Some (Oracle.Interval { slack }) -> check_bool "tight vs exact" true (slack <= 1e-6)
  | _ -> Alcotest.fail "certified vs exact must be Interval");
  (match p cert cert with
  | Some (Oracle.Interval { slack }) -> check_bool "tight pair" true (slack <= 1e-6)
  | _ -> Alcotest.fail "certified pair must be Interval");
  check_bool "certified vs statistical incomparable" true (p cert mc = None)

let interval_result lo hi =
  { Oracle.p_sensitized = 0.5 *. (lo +. hi); per_observation = []; interval = Some (lo, hi) }

let point_result p = { Oracle.p_sensitized = p; per_observation = []; interval = None }

let test_interval_agreement () =
  (* Analytical inside the certified interval = agreement; outside = a HARD
     finding (not statistical) carrying the gap beyond the slack. *)
  let cert = Oracle.certified () in
  let an = Oracle.reference () in
  let c = cancellation () in
  let policy =
    match Oracle.policy ~envelope:0.0 ~z:4.5 cert an with
    | Some p -> p
    | None -> Alcotest.fail "comparable"
  in
  let compare_with r =
    Oracle.compare_site ~policy ~left:cert ~right:an c 0 (interval_result 0.2 0.6) r
  in
  check_int "inside agrees" 0 (List.length (compare_with (point_result 0.4)));
  check_int "endpoint counts as inside" 0 (List.length (compare_with (point_result 0.6)));
  (match compare_with (point_result 0.9) with
  | [ m ] ->
    check_bool "outside is a hard finding" true (not (Oracle.is_statistical m.Oracle.policy));
    check_float_eps 1e-9 "gap beyond the interval" 0.3 m.Oracle.gap
  | l -> Alcotest.failf "expected exactly one finding, got %d" (List.length l));
  check_bool "NaN trips" true (compare_with (point_result Float.nan) <> [])

let test_interval_degenerate () =
  (* A degenerate [lo = hi] certified verdict against an exact oracle
     behaves as an exact pair: equality agrees, real separation trips. *)
  let cert = Oracle.certified () in
  let ex = Oracle.exact_enum () in
  let c = cancellation () in
  let policy =
    match Oracle.policy ~envelope:0.65 ~z:4.5 cert ex with
    | Some p -> p
    | None -> Alcotest.fail "comparable"
  in
  let compare_with r =
    Oracle.compare_site ~policy ~left:cert ~right:ex c 0 (interval_result 0.25 0.25) r
  in
  check_int "equal degenerate agrees" 0 (List.length (compare_with (point_result 0.25)));
  check_int "1e-12 rounding does not trip" 0
    (List.length (compare_with (point_result (0.25 +. 1e-12))));
  check_bool "real separation trips the exact pair" true
    (compare_with (point_result 0.3) <> [])

let test_wilson_endpoints () =
  (* Degenerate estimates must not trip the interval on rounding alone. *)
  let mc = Oracle.monte_carlo ~vectors:2048 () in
  let ex = Oracle.exact_enum () in
  let c = cancellation () in
  let one = { Oracle.p_sensitized = 1.0; per_observation = []; interval = None } in
  let zero = { Oracle.p_sensitized = 0.0; per_observation = []; interval = None } in
  let policy =
    match Oracle.policy ~envelope:0.65 ~z:4.5 mc ex with
    | Some p -> p
    | None -> Alcotest.fail "comparable"
  in
  check_int "1 vs 1 agrees" 0
    (List.length (Oracle.compare_site ~policy ~left:mc ~right:ex c 0 one one));
  check_int "0 vs 0 agrees" 0
    (List.length (Oracle.compare_site ~policy ~left:mc ~right:ex c 0 zero zero));
  check_bool "a real gap still trips" true
    (Oracle.compare_site ~policy ~left:mc ~right:ex c 0 one zero <> [])

(* --- full-panel agreement on the embedded circuits --------------------------- *)

let run_panel ?(envelope = Oracle.default_envelope) c =
  let ck = Fuzz.check_all_sites ~envelope c in
  (match List.filter Fuzz.is_hard ck.Fuzz.findings with
  | [] -> ()
  | f :: _ -> Alcotest.failf "hard finding: %a" Fuzz.pp_finding f);
  ck

let test_panel_fig1 () =
  let ck = run_panel (fig1 ()) in
  check_bool "compared the full panel" true (List.length ck.Fuzz.pairs >= 4);
  check_bool "no capacity skips on fig1" true (ck.Fuzz.skipped = [])

let test_panel_s27 () = ignore (run_panel (Circuit_gen.Embedded.s27 ()))
let test_panel_c17 () = ignore (run_panel (Circuit_gen.Embedded.c17 ()))

let test_panel_cancellation () =
  (* Reconvergent cancellation: the polarity-tracked analytical engines and
     both exact oracles all agree P_sensitized(x) = 0. *)
  ignore (run_panel ~envelope:1e-9 (cancellation ()))

let test_panel_with_certified () =
  (* Adding the certified tier to the panel: on small circuits every verdict
     is BDD-exact (degenerate interval), so it must agree with the exact
     oracles at 1e-9 and with the analytical ones inside the envelope. *)
  let oracles =
    Conformance.Oracle.default () @ [ Conformance.Oracle.certified () ]
  in
  List.iter
    (fun c ->
      let ck = Fuzz.check_all_sites ~oracles c in
      (match List.filter Fuzz.is_hard ck.Fuzz.findings with
      | [] -> ()
      | f :: _ -> Alcotest.failf "hard finding: %a" Fuzz.pp_finding f);
      check_bool "certified pair compared" true
        (List.exists
           (fun (a, b) -> a = "certified" || b = "certified")
           ck.Fuzz.pairs))
    [ fig1 (); Circuit_gen.Embedded.c17 (); cancellation () ]

(* --- corpus replay ------------------------------------------------------------ *)

(* dune runtest runs from the test directory (where the corpus glob deps are
   staged); dune exec runs from the workspace root. *)
let corpus_dir =
  if Sys.file_exists "corpus" then "corpus" else "test/corpus"

let test_corpus_replay () =
  let entries = Corpus.load corpus_dir in
  check_bool "corpus is populated" true (List.length entries >= 5);
  check_bool "parity entries are no longer skipped" true
    (List.exists (fun e -> e.Corpus.file = "parity3.blif") entries
    && List.exists (fun e -> e.Corpus.file = "parity5.blif") entries);
  List.iter
    (fun e ->
      (* Per-entry envelope override from the sidecar: decomposed parity
         deviates far beyond the default analytical ceiling, and that
         deviation is a pinned value now, not an exclusion. *)
      let envelope = Option.value e.Corpus.envelope ~default:Oracle.default_envelope in
      let ck = run_panel ~envelope e.Corpus.circuit in
      check_bool (e.Corpus.file ^ " compared") true (ck.Fuzz.comparisons > 0))
    entries

let test_corpus_stability () =
  (* save/load round-trip: native-XOR circuits are stored elaborated with a
     fingerprint sidecar; tampered bytes are rejected loudly. *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ser_corpus_test_%d" (Unix.getpid ()))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  Fun.protect ~finally:cleanup (fun () ->
      let c = Circuit_gen.Structured.parity_tree ~width:4 () in
      let path = Corpus.save ~envelope:0.85 ~dir ~name:"parity4" c in
      check_bool "meta sidecar written" true
        (Sys.file_exists (Filename.remove_extension path ^ ".meta.json"));
      (match Corpus.load dir with
      | [ e ] ->
        check_string "file" "parity4.blif" e.Corpus.file;
        check_bool "envelope restored" true (e.Corpus.envelope = Some 0.85);
        (* Decomposition stability: the loaded circuit is its own
           print/parse fixpoint, so replay checks what was saved. *)
        check_string "loaded circuit is a fixpoint" e.Corpus.fingerprint
          (Corpus.fingerprint
             (Blif_format.Blif_parser.parse_string (Shrinker.to_blif e.Corpus.circuit)))
      | l -> Alcotest.failf "expected one entry, got %d" (List.length l));
      let oc = open_out path in
      output_string oc (Shrinker.to_blif (fig1 ()));
      close_out oc;
      check_bool "tampered entry rejected" true
        (match Corpus.load dir with
        | _ -> false
        | exception Corpus.Unstable _ -> true))

let test_corpus_roundtrip () =
  (* A mutated circuit (names contain '#') survives the BLIF round-trip
     after sanitizing and keeps its P_sensitized per surviving site. *)
  let c = fig1 () in
  let m = Transform.insert_identity ~double_invert:true c ~net:(Circuit.find c "A") in
  let s = Shrinker.sanitize_names m in
  let reparsed = Blif_format.Blif_parser.parse_string (Shrinker.to_blif m) in
  (* The parser may re-elaborate wide gates, so compare the interface and
     the semantics rather than the node count. *)
  check_int "same inputs" (Circuit.input_count s) (Circuit.input_count reparsed);
  check_int "same outputs" (Circuit.output_count s) (Circuit.output_count reparsed);
  let p c name =
    let sp = Sigprob.Sp_topological.compute c in
    let e = Epp.Epp_engine.create ~sp c in
    (Epp.Epp_engine.analyze_site e (Circuit.find c name)).Epp.Epp_engine.p_sensitized
  in
  check_float "EPP preserved" (p c "H") (p reparsed "H")

(* --- bounded fixed-seed fuzz --------------------------------------------------- *)

let test_fixed_seed_fuzz () =
  (* A small deterministic fuzz run inside the tier-1 budget (~2s): no hard
     findings, decent pair coverage, envelope mean near the paper's claim. *)
  let config =
    { Fuzz.default_config with seed = 20260806; cases = 12; mc_vectors = 1024 }
  in
  let t0 = Unix.gettimeofday () in
  let r = Fuzz.run config in
  let dt = Unix.gettimeofday () -. t0 in
  (match r.Fuzz.hard with
  | [] -> ()
  | f :: _ -> Alcotest.failf "hard finding: %a" Fuzz.pp_finding f);
  check_int "all cases ran" 12 r.Fuzz.cases;
  check_bool "mutants were checked" true (r.Fuzz.mutants > 0);
  check_bool "invariants were checked" true (r.Fuzz.invariant_checks > 100);
  check_bool ">=4 oracle pairs" true (List.length r.Fuzz.pair_counts >= 4);
  check_bool "within the 2s budget" true (dt < 2.0);
  check_int "deterministic comparisons" r.Fuzz.comparisons (Fuzz.run config).Fuzz.comparisons

(* --- metamorphic invariants on the embedded circuits --------------------------- *)

let epp_of c name =
  let sp = Sigprob.Sp_topological.compute c in
  let e = Epp.Epp_engine.create ~sp c in
  (Epp.Epp_engine.analyze_site e (Circuit.find c name)).Epp.Epp_engine.p_sensitized

let check_mutation_invariant c mutant =
  for v = 0 to Circuit.node_count c - 1 do
    let name = Circuit.node_name c v in
    match Circuit.find_opt mutant name with
    | None -> ()
    | Some _ ->
      check_float_eps 1e-12
        (Printf.sprintf "site %s" name)
        (epp_of c name) (epp_of mutant name)
  done

let test_metamorphic_s27 () =
  let c = Circuit_gen.Embedded.s27 () in
  check_mutation_invariant c (Transform.insert_identity c ~net:(Circuit.find c "G10"));
  let dm =
    List.find
      (fun v ->
        match Circuit.kind_of c v with
        | Some (Gate.And | Gate.Or | Gate.Nand | Gate.Nor) -> true
        | _ -> false)
      (List.init (Circuit.node_count c) Fun.id)
  in
  check_mutation_invariant c (Transform.de_morgan c ~gate:dm)

let test_metamorphic_fig1 () =
  let c = fig1 () in
  check_mutation_invariant c
    (Transform.insert_identity ~double_invert:true c ~net:(Circuit.find c "A"));
  check_mutation_invariant c (Transform.split_fanout c ~net:(Circuit.find c "A"))

(* --- shrinker ------------------------------------------------------------------ *)

let test_shrinker_demo () =
  (* The acceptance gate: perturb the kernel through the supervisor seam,
     find a disagreement, shrink it to <=10 gates, and the repro must still
     disagree and emit as BLIF + OCaml. *)
  let demo = Fuzz.shrink_demo ~seed:2026 () in
  let o = demo.Fuzz.outcome in
  check_bool "still disagrees" true demo.Fuzz.still_disagrees;
  check_bool "repro has <=10 gates" true (o.Shrinker.final_gates <= 10);
  check_bool "it shrank" true (o.Shrinker.final_gates < o.Shrinker.initial_gates);
  check_bool "BLIF emitted" true (String.length demo.Fuzz.blif > 0);
  check_bool "snippet mentions the site" true
    (let site = Circuit.node_name o.Shrinker.circuit o.Shrinker.site in
     let needle = Printf.sprintf "%S" site in
     let hay = demo.Fuzz.snippet in
     let n = String.length needle and h = String.length hay in
     let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
     scan 0)

let test_shrinker_tracks_site () =
  (* Shrinking under a predicate that only needs the site observable keeps
     the site alive and reaches a tiny circuit. *)
  let c = random_small_dag ~seed:5 in
  let site =
    List.find (Circuit.is_gate c) (List.init (Circuit.node_count c) Fun.id)
  in
  let name = Circuit.node_name c site in
  let check cand s =
    Circuit.node_name cand s = name
    && (epp_of cand name > 0.0 || Circuit.output_count cand > 0)
  in
  if check c site then begin
    let o = Shrinker.shrink ~check c ~site in
    check_string "site name preserved" name
      (Circuit.node_name o.Shrinker.circuit o.Shrinker.site);
    check_bool "did not grow" true (o.Shrinker.final_gates <= o.Shrinker.initial_gates)
  end

let test_shrinker_rejects_non_repro () =
  let c = fig1 () in
  Alcotest.check_raises "must reproduce"
    (Invalid_argument "Shrinker.shrink: the disagreement does not reproduce on the input")
    (fun () -> ignore (Shrinker.shrink ~check:(fun _ _ -> false) c ~site:0))

let test_sanitize_names () =
  let c = fig1 () in
  let m = Transform.insert_identity ~double_invert:true c ~net:(Circuit.find c "A") in
  let s = Shrinker.sanitize_names m in
  for v = 0 to Circuit.node_count s - 1 do
    String.iter
      (fun ch ->
        if ch = '#' || ch = ' ' || ch = '\\' || ch = '=' then
          Alcotest.failf "unsafe char %C survives in %s" ch (Circuit.node_name s v))
      (Circuit.node_name s v)
  done

(* --- fingerprint ----------------------------------------------------------------- *)

let test_fingerprint_distinguishes () =
  let a = Fuzz.fingerprint (fig1 ()) in
  check_string "stable" a (Fuzz.fingerprint (fig1 ()));
  check_bool "sensitive to structure" true
    (a <> Fuzz.fingerprint (Transform.insert_identity (fig1 ()) ~net:0))

let () =
  Alcotest.run "conformance"
    [
      ( "policies",
        [
          Alcotest.test_case "soundness matrix" `Quick test_policy_matrix;
          Alcotest.test_case "Wilson endpoints" `Quick test_wilson_endpoints;
          Alcotest.test_case "interval matrix" `Quick test_interval_policy_matrix;
          Alcotest.test_case "interval agreement" `Quick test_interval_agreement;
          Alcotest.test_case "degenerate intervals" `Quick test_interval_degenerate;
        ] );
      ( "panel",
        [
          Alcotest.test_case "fig1" `Quick test_panel_fig1;
          Alcotest.test_case "s27" `Quick test_panel_s27;
          Alcotest.test_case "c17" `Quick test_panel_c17;
          Alcotest.test_case "cancellation" `Quick test_panel_cancellation;
          Alcotest.test_case "with the certified tier" `Slow test_panel_with_certified;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "replay" `Slow test_corpus_replay;
          Alcotest.test_case "save/load stability" `Quick test_corpus_stability;
          Alcotest.test_case "BLIF round-trip of mutants" `Quick test_corpus_roundtrip;
        ] );
      ("fuzz", [ Alcotest.test_case "fixed-seed run" `Slow test_fixed_seed_fuzz ]);
      ( "metamorphic",
        [
          Alcotest.test_case "s27 invariants" `Quick test_metamorphic_s27;
          Alcotest.test_case "fig1 invariants" `Quick test_metamorphic_fig1;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "perturbed-kernel demo" `Quick test_shrinker_demo;
          Alcotest.test_case "tracks the site by name" `Quick test_shrinker_tracks_site;
          Alcotest.test_case "rejects a non-repro" `Quick test_shrinker_rejects_non_repro;
          Alcotest.test_case "name sanitizing" `Quick test_sanitize_names;
        ] );
      ( "fingerprint",
        [ Alcotest.test_case "stable and sensitive" `Quick test_fingerprint_distinguishes ]
      );
    ]
