(* Shared fixtures and generators for the test suite. *)

open Netlist

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- hand-built circuits -------------------------------------------------- *)

(* The paper's Fig. 1, reconstructed from the published computation:
   E = NOT(A), G = AND(E, F), D = AND(A, B), H = OR(C, D, G), PO = H,
   with off-path signal probabilities SP_B = 0.2, SP_C = 0.3, SP_F = 0.7.
   The site is A (an AND fed by two free inputs). *)
let fig1 () =
  let b = Builder.create ~name:"fig1" () in
  List.iter (Builder.add_input b) [ "I1"; "I2"; "B"; "C"; "F" ];
  Builder.add_gate b ~output:"A" ~kind:Gate.And [ "I1"; "I2" ];
  Builder.add_gate b ~output:"E" ~kind:Gate.Not [ "A" ];
  Builder.add_gate b ~output:"G" ~kind:Gate.And [ "E"; "F" ];
  Builder.add_gate b ~output:"D" ~kind:Gate.And [ "A"; "B" ];
  Builder.add_gate b ~output:"H" ~kind:Gate.Or [ "C"; "D"; "G" ];
  Builder.add_output b "H";
  Builder.freeze b

let fig1_spec c = Sigprob.Sp.of_alist c [ ("B", 0.2); ("C", 0.3); ("F", 0.7) ]

let fig1_input_sp c v =
  match Circuit.node_name c v with
  | "B" -> 0.2
  | "C" -> 0.3
  | "F" -> 0.7
  | _ -> 0.5

(* A 2-level tree: y = AND(OR(a, b), NAND(c, d)). Fanout-free. *)
let small_tree () =
  let b = Builder.create ~name:"tree" () in
  List.iter (Builder.add_input b) [ "a"; "b"; "c"; "d" ];
  Builder.add_gate b ~output:"t1" ~kind:Gate.Or [ "a"; "b" ];
  Builder.add_gate b ~output:"t2" ~kind:Gate.Nand [ "c"; "d" ];
  Builder.add_gate b ~output:"y" ~kind:Gate.And [ "t1"; "t2" ];
  Builder.add_output b "y";
  Builder.freeze b

(* Perfect error cancellation through reconvergence:
   y = XOR(x, NOT(NOT(x))) == XOR(x, x) == 0: an error on x never reaches y.
   The polarity-tracked rules get this exactly; the naive rules cannot. *)
let cancellation () =
  let b = Builder.create ~name:"cancel" () in
  Builder.add_input b "x";
  Builder.add_gate b ~output:"n1" ~kind:Gate.Not [ "x" ];
  Builder.add_gate b ~output:"n2" ~kind:Gate.Not [ "n1" ];
  Builder.add_gate b ~output:"y" ~kind:Gate.Xor [ "x"; "n2" ];
  Builder.add_output b "y";
  Builder.freeze b

(* A small sequential circuit: 3-bit shift register with an XOR tap. *)
let shift_register () =
  let b = Builder.create ~name:"shift3" () in
  Builder.add_input b "si";
  Builder.add_dff b ~q:"q0" ~d:"si";
  Builder.add_dff b ~q:"q1" ~d:"q0";
  Builder.add_dff b ~q:"q2" ~d:"q1";
  Builder.add_gate b ~output:"tap" ~kind:Gate.Xor [ "q0"; "q2" ];
  Builder.add_output b "tap";
  Builder.freeze b

(* --- random circuit generation for property tests ------------------------ *)

(* A random fanout-free (tree) circuit with [inputs] leaves, deterministic
   from the seed.  On trees the analytical EPP and SP are exact, so these are
   the equality fixtures. *)
let random_tree ~seed ~inputs =
  if inputs < 1 then invalid_arg "random_tree";
  let rng = Rng.create ~seed in
  let b = Builder.create ~name:(Printf.sprintf "tree%d" seed) () in
  let leaves = List.init inputs (fun i -> Printf.sprintf "i%d" i) in
  List.iter (Builder.add_input b) leaves;
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "g%d" !counter
  in
  (* Repeatedly combine 1-3 available roots into a new gate until one root
     remains; every signal is consumed at most once => fanout-free. *)
  let kinds = [| Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor |] in
  let rec combine available =
    match available with
    | [] -> assert false
    | [ root ] -> root
    | _ :: _ :: _ ->
      let n = List.length available in
      let take = min n (1 + Rng.int rng ~bound:3) in
      let arr = Array.of_list available in
      Rng.shuffle_in_place rng arr;
      let chosen = Array.sub arr 0 take |> Array.to_list in
      let rest = Array.sub arr take (n - take) |> Array.to_list in
      let name = fresh () in
      if take = 1 then
        Builder.add_gate b ~output:name ~kind:(if Rng.bool rng then Gate.Not else Gate.Buf) chosen
      else Builder.add_gate b ~output:name ~kind:kinds.(Rng.int rng ~bound:6) chosen;
      combine (name :: rest)
  in
  let root = combine leaves in
  Builder.add_output b root;
  Builder.freeze b

(* A small random DAG with reconvergent fanout (via Circuit_gen), sized for
   exhaustive oracles. *)
let random_small_dag ~seed =
  let profile =
    Circuit_gen.Profiles.make
      ~name:(Printf.sprintf "dag%d" seed)
      ~inputs:5 ~outputs:3 ~ffs:0 ~gates:14
  in
  Circuit_gen.Random_dag.generate ~seed profile

(* A qcheck-friendly wrapper: tests draw seeds, we build deterministic
   structures from them. *)
let seed_arbitrary = QCheck2.Gen.int_range 1 1_000_000

let qtest ?(count = 100) ~name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* --- failure reproduction ------------------------------------------------- *)

(* One-line structural fingerprint (counts + hash) shared with the fuzzer:
   printed alongside the failing seed so a property failure in CI can be
   rebuilt without rerunning the whole suite. *)
let fingerprint = Conformance.Fuzz.fingerprint

(* [with_repro ~build seed prop] runs [prop] on [build seed]; when the
   property fails (or raises), the QCheck counterexample report carries the
   seed and the circuit fingerprint. *)
let with_repro ~build seed prop =
  let c = build seed in
  let repro detail =
    QCheck2.Test.fail_report
      (Printf.sprintf "failing seed %d, circuit %s%s" seed (fingerprint c) detail)
  in
  match prop c with
  | true -> true
  | false -> repro ""
  | exception QCheck2.Test.Test_fail (msg, _) -> repro (": " ^ msg)
  | exception exn -> repro (Printf.sprintf " (raised %s)" (Printexc.to_string exn))
