(* Tests for the random-simulation baseline and the exhaustive EPP oracle. *)

open Helpers
open Netlist

(* --- exhaustive oracle ------------------------------------------------------ *)

let test_exact_po_driver_always_sensitized () =
  (* An error on the node driving a PO is always observed there. *)
  let c = fig1 () in
  let h = Circuit.find c "H" in
  let r = Fault_sim.Epp_exact.compute c h in
  check_float "P_sens = 1" 1.0 r.Fault_sim.Epp_exact.p_sensitized

let test_exact_unobservable_site () =
  (* A gate feeding nothing and not an output has P_sens = 0. *)
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_gate b ~output:"y" ~kind:Gate.Not [ "a" ];
  Builder.add_gate b ~output:"dangling" ~kind:Gate.Not [ "a" ];
  Builder.add_output b "y";
  let c = Builder.freeze b in
  let r = Fault_sim.Epp_exact.compute c (Circuit.find c "dangling") in
  check_float "unobservable" 0.0 r.Fault_sim.Epp_exact.p_sensitized

let test_exact_input_limit () =
  let profile = Circuit_gen.Profiles.make ~name:"wide" ~inputs:22 ~outputs:1 ~ffs:0 ~gates:5 in
  let c = Circuit_gen.Random_dag.generate ~seed:3 profile in
  Alcotest.check_raises "limit"
    (Fault_sim.Epp_exact.Too_many_inputs { inputs = 22; limit = 20 }) (fun () ->
      ignore (Fault_sim.Epp_exact.compute c 0))

let test_exact_exactly_at_limit () =
  (* [Too_many_inputs] fires strictly above the limit: a circuit with exactly
     [default_limit] pseudo-inputs must enumerate (2^20 assignments). *)
  let width = Fault_sim.Epp_exact.default_limit in
  let c = Circuit_gen.Structured.parity_tree ~width () in
  check_int "fixture width" width (Circuit.input_count c);
  let r = Fault_sim.Epp_exact.compute c 0 in
  (* Every site of a parity tree is sensitized on every assignment. *)
  check_float "parity leaf" 1.0 r.Fault_sim.Epp_exact.p_sensitized

let test_exact_limit_override () =
  let c = small_tree () in
  (* 4 inputs: a limit of 3 must refuse, an explicit limit of 4 must run. *)
  Alcotest.check_raises "tightened"
    (Fault_sim.Epp_exact.Too_many_inputs { inputs = 4; limit = 3 }) (fun () ->
      ignore (Fault_sim.Epp_exact.compute ~limit:3 c 0));
  let r = Fault_sim.Epp_exact.compute ~limit:4 c (Circuit.find c "y") in
  check_float "explicit limit runs" 1.0 r.Fault_sim.Epp_exact.p_sensitized

let test_exact_biased_inputs_match_bdd () =
  (* Non-uniform input_sp: weighted enumeration against the independent BDD
     oracle, every site of fig1 under the paper's Fig.-1 biases. *)
  let c = fig1 () in
  let input_sp = fig1_input_sp c in
  let cb = Circuit_bdd.build c in
  for site = 0 to Circuit.node_count c - 1 do
    let e = Fault_sim.Epp_exact.compute ~input_sp c site in
    let b = Circuit_bdd.epp_exact ~input_sp cb site in
    check_float
      (Printf.sprintf "site %s" (Circuit.node_name c site))
      b.Circuit_bdd.p_sensitized e.Fault_sim.Epp_exact.p_sensitized;
    List.iter
      (fun (obs, p) ->
        check_float
          (Printf.sprintf "site %s obs" (Circuit.node_name c site))
          (List.assoc obs b.Circuit_bdd.per_observation)
          p)
      e.Fault_sim.Epp_exact.per_observation
  done

let test_exact_bad_site () =
  let c = fig1 () in
  Alcotest.check_raises "bad site" (Invalid_argument "Epp_exact.compute: bad site") (fun () ->
      ignore (Fault_sim.Epp_exact.compute c 999))

let test_exact_masked_by_constant () =
  (* y = AND(x, 0) can never show an error on x. *)
  let b = Builder.create () in
  Builder.add_input b "x";
  Builder.add_gate b ~output:"zero" ~kind:Gate.Const0 [];
  Builder.add_gate b ~output:"y" ~kind:Gate.And [ "x"; "zero" ];
  Builder.add_output b "y";
  let c = Builder.freeze b in
  let r = Fault_sim.Epp_exact.compute c (Circuit.find c "x") in
  check_float "masked" 0.0 r.Fault_sim.Epp_exact.p_sensitized

let test_exact_per_observation_bounds () =
  let c = Circuit_gen.Embedded.s27 () in
  for site = 0 to Circuit.node_count c - 1 do
    let r = Fault_sim.Epp_exact.compute c site in
    let per = List.map snd r.Fault_sim.Epp_exact.per_observation in
    let maxp = List.fold_left Float.max 0.0 per in
    let sump = List.fold_left ( +. ) 0.0 per in
    let ps = r.Fault_sim.Epp_exact.p_sensitized in
    if ps < maxp -. 1e-9 || ps > sump +. 1e-9 then
      Alcotest.failf "bounds violated at site %d: %.4f not in [%.4f, %.4f]" site ps maxp sump
  done

(* --- Monte-Carlo baseline ---------------------------------------------------- *)

let test_sim_matches_exact_fig1 () =
  let c = fig1 () in
  let ctx =
    Fault_sim.Epp_sim.create ~config:{ Fault_sim.Epp_sim.vectors = 50_000; input_sp = (fun _ -> 0.5) } c
  in
  let rng = Rng.create ~seed:17 in
  for site = 0 to Circuit.node_count c - 1 do
    let sim = Fault_sim.Epp_sim.estimate_site ctx ~rng site in
    let exact = Fault_sim.Epp_exact.compute c site in
    let d =
      Float.abs (sim.Fault_sim.Epp_sim.p_sensitized -. exact.Fault_sim.Epp_exact.p_sensitized)
    in
    if d > 0.01 then
      Alcotest.failf "site %s: sim %.4f vs exact %.4f"
        (Circuit.node_name c site)
        sim.Fault_sim.Epp_sim.p_sensitized exact.Fault_sim.Epp_exact.p_sensitized
  done

let test_sim_per_observation_matches_exact () =
  let c = Circuit_gen.Embedded.c17 () in
  let ctx =
    Fault_sim.Epp_sim.create ~config:{ Fault_sim.Epp_sim.vectors = 50_000; input_sp = (fun _ -> 0.5) } c
  in
  let rng = Rng.create ~seed:23 in
  let site = Circuit.find c "G11" in
  let sim = Fault_sim.Epp_sim.estimate_site ctx ~rng site in
  let exact = Fault_sim.Epp_exact.compute c site in
  List.iter2
    (fun (obs1, p_sim) (obs2, p_exact) ->
      check_string "same observation order" (Circuit.observation_name c obs1)
        (Circuit.observation_name c obs2);
      check_float_eps 0.01 (Circuit.observation_name c obs1) p_exact p_sim)
    sim.Fault_sim.Epp_sim.per_observation exact.Fault_sim.Epp_exact.per_observation

let test_sim_deterministic () =
  let c = fig1 () in
  let ctx = Fault_sim.Epp_sim.create c in
  let run () =
    (Fault_sim.Epp_sim.estimate_site ctx ~rng:(Rng.create ~seed:5) 5).Fault_sim.Epp_sim
    .p_sensitized
  in
  check_float "reproducible" (run ()) (run ())

let test_sim_partial_word_vectors () =
  (* A vector count that is not a multiple of 64 exercises the masked tail. *)
  let c = fig1 () in
  let ctx = Fault_sim.Epp_sim.create ~config:{ Fault_sim.Epp_sim.vectors = 100; input_sp = (fun _ -> 0.5) } c in
  let r = Fault_sim.Epp_sim.estimate_site ctx ~rng:(Rng.create ~seed:9) 0 in
  check_int "vector count recorded" 100 r.Fault_sim.Epp_sim.vectors;
  check_bool "probability in range" true
    (r.Fault_sim.Epp_sim.p_sensitized >= 0.0 && r.Fault_sim.Epp_sim.p_sensitized <= 1.0)

let test_sim_vector_validation () =
  let c = fig1 () in
  Alcotest.check_raises "zero vectors" (Invalid_argument "Epp_sim.create: vectors must be positive")
    (fun () ->
      ignore (Fault_sim.Epp_sim.create ~config:{ Fault_sim.Epp_sim.vectors = 0; input_sp = (fun _ -> 0.5) } c))

let test_sim_bad_site () =
  let c = fig1 () in
  let ctx = Fault_sim.Epp_sim.create c in
  Alcotest.check_raises "bad site" (Invalid_argument "Epp_sim.estimate_site: bad site") (fun () ->
      ignore (Fault_sim.Epp_sim.estimate_site ctx ~rng:(Rng.create ~seed:1) (-1)))

let test_sim_estimate_all_covers_every_node () =
  let c = Circuit_gen.Embedded.c17 () in
  let ctx = Fault_sim.Epp_sim.create ~config:{ Fault_sim.Epp_sim.vectors = 640; input_sp = (fun _ -> 0.5) } c in
  let all = Fault_sim.Epp_sim.estimate_all ctx ~rng:(Rng.create ~seed:2) in
  check_int "one estimate per node" (Circuit.node_count c) (List.length all);
  List.iteri
    (fun i e -> check_int "site order" i e.Fault_sim.Epp_sim.site)
    all

let test_sim_sequential_observations () =
  (* In a sequential circuit, errors reaching only FF data inputs must still
     count as sensitized. *)
  let c = shift_register () in
  let ctx = Fault_sim.Epp_sim.create ~config:{ Fault_sim.Epp_sim.vectors = 6400; input_sp = (fun _ -> 0.5) } c in
  let si = Circuit.find c "si" in
  let r = Fault_sim.Epp_sim.estimate_site ctx ~rng:(Rng.create ~seed:3) si in
  (* si drives q0.D directly: always captured there. *)
  check_float "siphons into q0.D" 1.0 r.Fault_sim.Epp_sim.p_sensitized

let prop_sim_close_to_exact_on_random_dags =
  qtest ~count:15 ~name:"simulation close to exhaustive on random DAGs" seed_arbitrary
    (fun seed ->
      let c = random_small_dag ~seed in
      let ctx =
        Fault_sim.Epp_sim.create ~config:{ Fault_sim.Epp_sim.vectors = 20_000; input_sp = (fun _ -> 0.5) } c
      in
      let rng = Rng.create ~seed:(seed + 1) in
      let site = seed mod Circuit.node_count c in
      let sim = Fault_sim.Epp_sim.estimate_site ctx ~rng site in
      let exact = Fault_sim.Epp_exact.compute c site in
      Float.abs (sim.Fault_sim.Epp_sim.p_sensitized -. exact.Fault_sim.Epp_exact.p_sensitized)
      < 0.02)

let () =
  Alcotest.run "fault_sim"
    [
      ( "exact oracle",
        [
          Alcotest.test_case "PO driver always sensitized" `Quick
            test_exact_po_driver_always_sensitized;
          Alcotest.test_case "unobservable site" `Quick test_exact_unobservable_site;
          Alcotest.test_case "input limit" `Quick test_exact_input_limit;
          Alcotest.test_case "exactly at the limit" `Slow test_exact_exactly_at_limit;
          Alcotest.test_case "limit override" `Quick test_exact_limit_override;
          Alcotest.test_case "biased inputs match BDD" `Quick
            test_exact_biased_inputs_match_bdd;
          Alcotest.test_case "bad site" `Quick test_exact_bad_site;
          Alcotest.test_case "masking by constants" `Quick test_exact_masked_by_constant;
          Alcotest.test_case "per-observation bounds (s27)" `Quick
            test_exact_per_observation_bounds;
        ] );
      ( "monte-carlo",
        [
          Alcotest.test_case "matches exact on fig1 (all sites)" `Slow test_sim_matches_exact_fig1;
          Alcotest.test_case "per-observation matches exact" `Slow
            test_sim_per_observation_matches_exact;
          Alcotest.test_case "deterministic from seed" `Quick test_sim_deterministic;
          Alcotest.test_case "partial last word" `Quick test_sim_partial_word_vectors;
          Alcotest.test_case "vector validation" `Quick test_sim_vector_validation;
          Alcotest.test_case "bad site" `Quick test_sim_bad_site;
          Alcotest.test_case "estimate_all covers all nodes" `Quick
            test_sim_estimate_all_covers_every_node;
          Alcotest.test_case "FF data inputs observed" `Quick test_sim_sequential_observations;
          prop_sim_close_to_exact_on_random_dags;
        ] );
    ]
