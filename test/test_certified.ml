(* Property tests for the certified exact tier (Conformance.Certified) and
   its supporting BDD machinery: soundness of the interval rung against
   exhaustive enumeration, interval tightening under budget increases,
   Wilson-certificate rejection of a biased Monte-Carlo seam, function
   preservation under sifting, and pinned golden exact values for the
   reference circuits. *)

open Helpers
open Netlist
module Certified = Conformance.Certified

let no_mc = { Certified.default_config with mc_max_vectors = 0 }

let enum ?input_sp c site =
  (Fault_sim.Epp_exact.compute ?input_sp c site).Fault_sim.Epp_exact.p_sensitized

(* --- rung-2 soundness: interval contains enumeration ----------------------- *)

(* The acceptance property: for every site of >=500 random reconvergent
   DAGs, the certified interval bounds contain the exhaustive-enumeration
   value.  The bounds are Fréchet/error-difference propagation, so they
   must be valid under the arbitrary correlation these DAGs produce. *)
let test_interval_soundness =
  qtest ~count:500 ~name:"certified interval contains enumeration (500 DAGs)"
    seed_arbitrary (fun seed ->
      with_repro ~build:(fun s -> random_small_dag ~seed:s) seed (fun c ->
          let ok = ref true in
          for site = 0 to Circuit.node_count c - 1 do
            let exact = enum c site in
            let lo, hi = Certified.interval_bounds c site in
            if not (lo -. 1e-9 <= exact && exact <= hi +. 1e-9) then begin
              ok := false;
              ignore
                (QCheck2.Test.fail_report
                   (Printf.sprintf "site %d (%s): exact %.9g outside [%.9g, %.9g]"
                      site (Circuit.node_name c site) exact lo hi))
            end
          done;
          !ok))

(* The full ladder on small circuits lands on the BDD rung: a degenerate
   interval equal to enumeration, certificate and all. *)
let test_bdd_rung_exact =
  qtest ~count:100 ~name:"BDD rung matches enumeration exactly" seed_arbitrary
    (fun seed ->
      with_repro ~build:(fun s -> random_small_dag ~seed:s) seed (fun c ->
          let n = Circuit.node_count c in
          List.for_all
            (fun site ->
              let v = Certified.certify ~config:no_mc c site in
              let exact = enum c site in
              (match v.Certified.certificate with
              | Certified.Bdd_exact _ -> ()
              | cert ->
                ignore
                  (QCheck2.Test.fail_report
                     (Fmt.str "site %d: expected Bdd_exact, got %a" site
                        Certified.pp_certificate cert)));
              Certified.is_exact v
              && Float.abs (v.Certified.lo -. exact) <= 1e-9)
            [ 0; n / 2; n - 1 ]))

(* --- tightening: intervals are monotone under budget increases ------------- *)

let test_tightening =
  qtest ~count:200 ~name:"intervals tighten monotonically with budget"
    seed_arbitrary (fun seed ->
      with_repro ~build:(fun s -> random_small_dag ~seed:s) seed (fun c ->
          let site =
            List.find (Circuit.is_gate c) (List.init (Circuit.node_count c) Fun.id)
          in
          let verdict budget =
            Certified.certify ~config:{ no_mc with node_budget = budget } c site
          in
          let nested (a : Certified.verdict) (b : Certified.verdict) =
            (* b's budget >= a's: b's interval must lie inside a's. *)
            b.Certified.lo >= a.Certified.lo -. 1e-12
            && b.Certified.hi <= a.Certified.hi +. 1e-12
          in
          let v0 = verdict 16 and v1 = verdict 400 and v2 = verdict 400_000 in
          nested v0 v1 && nested v1 v2 && nested v0 v2))

(* --- rung-3 Wilson certificates -------------------------------------------- *)

(* y = AND(s, x, y): an error on s propagates iff x AND y, so the true
   P_sensitized is 0.25 while the sound interval is the loose [0, 0.5]
   (the off-path conjunction is only Fréchet-bounded).  Wide enough to
   trigger MC tightening deterministically once the BDD rung is disabled. *)
let seam_circuit () =
  let b = Builder.create ~name:"seam" () in
  List.iter (Builder.add_input b) [ "s"; "x"; "y" ];
  Builder.add_gate b ~output:"g" ~kind:Gate.And [ "s"; "x"; "y" ];
  Builder.add_output b "g";
  Builder.freeze b

let mc_config =
  {
    Certified.default_config with
    node_budget = 0 (* skip the symbolic rung: drive the MC seam *);
    target_width = 0.05;
    mc_base_vectors = 1024;
    mc_max_vectors = 16_384;
  }

let test_wilson_honest () =
  let c = seam_circuit () in
  let site = Circuit.find c "s" in
  let stats = Certified.Stats.create () in
  let v = Certified.certify ~config:mc_config ~stats c site in
  (match v.Certified.certificate with
  | Certified.Mc_wilson { vectors; _ } -> check_bool "vectors grew" true (vectors >= 1024)
  | cert -> Alcotest.failf "expected Mc_wilson, got %a" Certified.pp_certificate cert);
  check_bool "contains the true value 0.25" true
    (v.Certified.lo <= 0.25 && 0.25 <= v.Certified.hi);
  check_bool "tighter than the sound interval" true
    (v.Certified.hi -. v.Certified.lo < 0.5);
  check_int "one certified MC verdict" 1 (Certified.Stats.mc_certified stats);
  check_int "the disabled symbolic rung counts as a trip" 1
    (Certified.Stats.budget_trips stats)

let test_wilson_rejects_biased_seam () =
  (* A sampler stuck at 0.9 produces a Wilson interval disjoint from the
     sound [0, 0.5] bound: the certificate must be REJECTED and the sound
     interval stand. *)
  let c = seam_circuit () in
  let site = Circuit.find c "s" in
  let biased _c ~input_sp:_ ~vectors:_ ~seed:_ ~site:_ = 0.9 in
  let stats = Certified.Stats.create () in
  let v = Certified.certify ~config:mc_config ~sampler:biased ~stats c site in
  (match v.Certified.certificate with
  | Certified.Interval_bound -> ()
  | cert ->
    Alcotest.failf "biased seam must fall back to Interval_bound, got %a"
      Certified.pp_certificate cert);
  check_int "rejection recorded" 1 (Certified.Stats.mc_rejected stats);
  check_int "no MC certificate issued" 0 (Certified.Stats.mc_certified stats);
  (* The surviving interval is the sound one — still contains the truth. *)
  check_bool "sound bound stands" true
    (v.Certified.lo <= 0.25 && 0.25 <= v.Certified.hi)

(* --- sifting preserves functions ------------------------------------------- *)

let test_reorder_preserves =
  qtest ~count:50 ~name:"sifting preserves every root function" seed_arbitrary
    (fun seed ->
      with_repro ~build:(fun s -> random_small_dag ~seed:s) seed (fun c ->
          let cb = Circuit_bdd.build c in
          let m = Circuit_bdd.manager cb in
          let roots =
            Array.of_list
              (List.map (fun v -> Circuit_bdd.node_function cb v) (Circuit.outputs c))
          in
          let plan, m', roots' = Bdd.Reorder.sift m ~roots in
          if plan.Bdd.Reorder.size_after > plan.Bdd.Reorder.size_before then
            ignore
              (QCheck2.Test.fail_report
                 (Printf.sprintf "sifting grew the graph: %d -> %d"
                    plan.Bdd.Reorder.size_before plan.Bdd.Reorder.size_after));
          let rng = Rng.create ~seed in
          let inputs = Circuit.input_count c + Circuit.ff_count c in
          let ok = ref true in
          for _ = 1 to 32 do
            let a = Array.init inputs (fun _ -> Rng.bool rng) in
            Array.iteri
              (fun i root ->
                let before = Bdd.eval m root (fun v -> a.(v)) in
                let after =
                  Bdd.eval m' roots'.(i) (fun v -> a.(plan.Bdd.Reorder.perm.(v)))
                in
                if before <> after then ok := false)
              roots
          done;
          !ok))

(* --- golden exact values ---------------------------------------------------- *)

(* Exact P_sensitized literals computed once by weighted enumeration and
   pinned, so a silent regression in the BDD or enumeration back-ends
   cannot drift past a merely self-consistent panel.  GOLDEN: values from
   Fault_sim.Epp_exact at the stated input probabilities. *)
let check_golden name c input_sp expected =
  List.iter
    (fun (site_name, value) ->
      let site = Circuit.find c site_name in
      let label = name ^ ":" ^ site_name in
      check_float (label ^ " enumeration") value (enum ~input_sp c site);
      let v = Certified.certify ~config:no_mc ~input_sp c site in
      check_bool (label ^ " certified exact") true (Certified.is_exact v);
      check_float (label ^ " certified value") value v.Certified.lo)
    expected

let test_golden_fig1 () =
  let c = fig1 () in
  (* Site A with SP_B = 0.2, SP_C = 0.3, SP_F = 0.7 is the paper's
     published Fig. 1 computation: enumeration confirms 0.434 exactly
     (the analytical rules are exact on this circuit). *)
  check_golden "fig1" c (fig1_input_sp c)
    [ ("A", 0.434); ("D", 0.3325); ("G", 0.665) ]

let test_golden_c17 () =
  let c = Circuit_gen.Embedded.c17 () in
  check_golden "c17" c
    (fun _ -> 0.5)
    [ ("G10", 0.625); ("G11", 0.75); ("G16", 0.9375); ("G19", 0.625) ]

let test_golden_s27 () =
  let c = Circuit_gen.Embedded.s27 () in
  check_golden "s27" c
    (fun _ -> 0.5)
    [ ("G14", 0.9375); ("G8", 0.4375); ("G15", 0.3125) ]

let () =
  Alcotest.run "certified"
    [
      ( "soundness",
        [ test_interval_soundness; test_bdd_rung_exact; test_tightening ] );
      ( "wilson",
        [
          Alcotest.test_case "honest seam certifies" `Quick test_wilson_honest;
          Alcotest.test_case "biased seam rejected" `Quick test_wilson_rejects_biased_seam;
        ] );
      ("reorder", [ test_reorder_preserves ]);
      ( "golden",
        [
          Alcotest.test_case "fig1" `Quick test_golden_fig1;
          Alcotest.test_case "c17" `Quick test_golden_c17;
          Alcotest.test_case "s27" `Quick test_golden_s27;
        ] );
    ]
