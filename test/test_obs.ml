(* Tests for the Obs telemetry layer: metrics registry semantics (merge
   algebra, domain-safety), trace-event JSON shape, the hand-rolled JSON
   round trip, and the Timer wall/CPU clock split. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- metrics: basics ----------------------------------------------------- *)

let test_counter_gauge_histogram () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "c" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  let g = Obs.Metrics.gauge m "g" in
  Obs.Metrics.set_gauge g 2.5;
  let h = Obs.Metrics.histogram ~buckets:[| 1.0; 10.0 |] m "h" in
  Obs.Metrics.observe h 0.5;
  Obs.Metrics.observe h 5.0;
  Obs.Metrics.observe h 50.0;
  let s = Obs.Metrics.snapshot m in
  check_int "counter" 5 (Obs.Metrics.counter_value s "c");
  check_int "absent counter is 0" 0 (Obs.Metrics.counter_value s "nope");
  Alcotest.(check (option (float 0.0))) "gauge" (Some 2.5)
    (Obs.Metrics.gauge_value s "g");
  match Obs.Metrics.histogram_value s "h" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some h ->
    check_int "observations" 3 h.Obs.Metrics.count;
    Alcotest.(check (float 1e-9)) "sum" 55.5 h.Obs.Metrics.sum;
    Alcotest.(check (array int)) "bucket counts" [| 1; 1; 1 |]
      h.Obs.Metrics.counts

let test_registration_idempotent () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr (Obs.Metrics.counter m "c");
  Obs.Metrics.incr (Obs.Metrics.counter m "c");
  check_int "same cell by name" 2
    (Obs.Metrics.counter_value (Obs.Metrics.snapshot m) "c");
  check "mismatched histogram bounds rejected"
    (match Obs.Metrics.histogram ~buckets:[| 1.0 |] m "h" with
    | _ -> (
      match Obs.Metrics.histogram ~buckets:[| 2.0 |] m "h" with
      | _ -> false
      | exception Invalid_argument _ -> true))
    true

let test_null_registry () =
  let m = Obs.Metrics.null in
  check "is_null" (Obs.Metrics.is_null m) true;
  Obs.Metrics.incr (Obs.Metrics.counter m "c");
  Obs.Metrics.observe (Obs.Metrics.histogram m "h") 1.0;
  Obs.Metrics.set_gauge (Obs.Metrics.gauge m "g") 1.0;
  check "null snapshot is empty"
    (Obs.Metrics.snapshot m = Obs.Metrics.empty)
    true

(* --- metrics: merge algebra ---------------------------------------------- *)

let snap build =
  let m = Obs.Metrics.create () in
  build m;
  Obs.Metrics.snapshot m

let test_merge_associative_commutative () =
  let a =
    snap (fun m ->
        Obs.Metrics.add (Obs.Metrics.counter m "c") 1;
        Obs.Metrics.set_gauge (Obs.Metrics.gauge m "g") 1.0;
        Obs.Metrics.observe (Obs.Metrics.histogram ~buckets:[| 1.0 |] m "h") 0.5)
  in
  let b =
    snap (fun m ->
        Obs.Metrics.add (Obs.Metrics.counter m "c") 10;
        Obs.Metrics.add (Obs.Metrics.counter m "only-b") 7;
        Obs.Metrics.set_gauge (Obs.Metrics.gauge m "g") 3.0;
        Obs.Metrics.observe (Obs.Metrics.histogram ~buckets:[| 1.0 |] m "h") 2.0)
  in
  let c =
    snap (fun m ->
        Obs.Metrics.add (Obs.Metrics.counter m "c") 100;
        Obs.Metrics.set_gauge (Obs.Metrics.gauge m "g") 2.0)
  in
  let open Obs.Metrics in
  check "associative" (merge (merge a b) c = merge a (merge b c)) true;
  check "commutative" (merge a b = merge b a) true;
  check "empty is identity" (merge a empty = a && merge empty a = a) true;
  let abc = merge (merge a b) c in
  check_int "counters add" 111 (counter_value abc "c");
  check_int "union over names" 7 (counter_value abc "only-b");
  Alcotest.(check (option (float 0.0))) "gauges take the max" (Some 3.0)
    (gauge_value abc "g");
  (match histogram_value abc "h" with
  | Some h ->
    check_int "histograms add counts" 2 h.count;
    Alcotest.(check (array int)) "bucket-wise" [| 1; 1 |] h.counts
  | None -> Alcotest.fail "merged histogram missing");
  check "mismatched bounds rejected"
    (let bad =
       snap (fun m ->
           Obs.Metrics.observe
             (Obs.Metrics.histogram ~buckets:[| 9.0 |] m "h")
             0.5)
     in
     match merge a bad with
     | _ -> false
     | exception Invalid_argument _ -> true)
    true

(* --- metrics: domain-safety ---------------------------------------------- *)

let test_concurrent_writes_exact () =
  let m = Obs.Metrics.create () in
  let per_domain = 25_000 and domains = 4 in
  let body () =
    (* Register inside the domain: registration takes the mutex, updates
       do not — both paths must be domain-safe. *)
    let c = Obs.Metrics.counter m "c" in
    let h = Obs.Metrics.histogram ~buckets:[| 0.5 |] m "h" in
    for i = 1 to per_domain do
      Obs.Metrics.incr c;
      Obs.Metrics.observe h (if i land 1 = 0 then 0.25 else 0.75)
    done
  in
  let spawned = List.init domains (fun _ -> Domain.spawn body) in
  (* Snapshots under concurrent writes must not crash or tear a cell. *)
  let mid = Obs.Metrics.snapshot m in
  check "mid-flight snapshot is sane"
    (Obs.Metrics.counter_value mid "c" <= domains * per_domain)
    true;
  List.iter Domain.join spawned;
  let s = Obs.Metrics.snapshot m in
  check_int "no lost counter updates" (domains * per_domain)
    (Obs.Metrics.counter_value s "c");
  (match Obs.Metrics.histogram_value s "h" with
  | Some h ->
    check_int "no lost observations" (domains * per_domain) h.Obs.Metrics.count;
    check_int "bucket splits exactly"
      (domains * per_domain / 2)
      h.Obs.Metrics.counts.(0)
  | None -> Alcotest.fail "histogram missing");
  (* A snapshot is an immutable value: later writes don't reach into it. *)
  Obs.Metrics.incr (Obs.Metrics.counter m "c");
  check_int "snapshot isolated from later writes" (domains * per_domain)
    (Obs.Metrics.counter_value s "c")

(* --- trace --------------------------------------------------------------- *)

let test_trace_round_trip () =
  let t = Obs.Trace.create () in
  Obs.Trace.span t ~cat:"test" "outer" (fun () ->
      Obs.Trace.span t ~cat:"test" "inner" (fun () -> ());
      Obs.Trace.instant t "tick");
  Domain.join
    (Domain.spawn (fun () -> Obs.Trace.span t ~cat:"test" "worker" (fun () -> ())));
  check "span result passes through"
    (Obs.Trace.span t "r" (fun () -> 42) = 42)
    true;
  check "E emitted when f raises"
    (match Obs.Trace.span t "raiser" (fun () -> failwith "boom") with
    | () -> false
    | exception Failure _ -> true)
    true;
  let json = Obs.Trace.to_json t in
  (* The JSON round trip: what we emit, our strict parser accepts. *)
  let reparsed =
    match Obs.Json.parse (Obs.Json.to_string ~pretty:true json) with
    | Ok v -> v
    | Error msg -> Alcotest.fail ("trace JSON does not reparse: " ^ msg)
  in
  let events =
    match
      Option.bind (Obs.Json.member "traceEvents" reparsed) Obs.Json.to_list
    with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents list"
  in
  let str name e = Option.bind (Obs.Json.member name e) Obs.Json.to_string_value in
  let num name e = Option.bind (Obs.Json.member name e) Obs.Json.to_number in
  let phs p = List.filter (fun e -> str "ph" e = Some p) events in
  check_int "balanced B/E" (List.length (phs "B")) (List.length (phs "E"));
  check_int "five spans" 5 (List.length (phs "B"));
  check_int "one instant" 1 (List.length (phs "i"));
  let tids = List.sort_uniq compare (List.filter_map (num "tid") events) in
  check "per-domain tids" (List.length tids >= 2) true;
  let named =
    List.filter_map
      (fun e ->
        if str "ph" e = Some "M" && str "name" e = Some "thread_name" then
          num "tid" e
        else None)
      (phs "M")
  in
  check "every tid has a thread_name record"
    (List.for_all (fun tid -> List.mem tid named) tids)
    true;
  (* Chronological, non-negative microsecond timestamps. *)
  let ts =
    List.filter_map (num "ts")
      (List.filter (fun e -> str "ph" e <> Some "M") events)
  in
  check "timestamps non-negative" (List.for_all (fun t -> t >= 0.0) ts) true;
  check "timestamps chronological"
    (List.for_all2 ( <= ) ts (List.tl ts @ [ infinity ]))
    true

let test_trace_null () =
  let t = Obs.Trace.null in
  check "is_null" (Obs.Trace.is_null t) true;
  Obs.Trace.span t "x" (fun () -> ());
  Obs.Trace.instant t "y";
  check "null records nothing" (Obs.Trace.events t = []) true

(* --- json ---------------------------------------------------------------- *)

let test_json_round_trip () =
  let v =
    Obs.Json.(
      Obj
        [
          ("s", String "a \"b\" \\ \n \t \x01 é");
          ("n", Number 0.1);
          ("i", int (-42));
          ("big", Number 1.7976931348623157e308);
          ("null", Null);
          ("b", Bool false);
          ("l", List [ Number 1.0; String ""; Obj [] ]);
        ])
  in
  (match Obs.Json.parse (Obs.Json.to_string v) with
  | Ok v' -> check "compact round trip" (v = v') true
  | Error m -> Alcotest.fail m);
  (match Obs.Json.parse (Obs.Json.to_string ~pretty:true v) with
  | Ok v' -> check "pretty round trip" (v = v') true
  | Error m -> Alcotest.fail m);
  check "nan emits as null"
    (Obs.Json.to_string (Obs.Json.Number Float.nan) = "null")
    true

let test_json_parser_strict () =
  let rejects s =
    match Obs.Json.parse s with Ok _ -> false | Error _ -> true
  in
  let accepts s =
    match Obs.Json.parse s with Ok _ -> true | Error _ -> false
  in
  check "trailing garbage" (rejects "{} x") true;
  check "trailing comma" (rejects "[1,]") true;
  check "unterminated string" (rejects "\"abc") true;
  check "raw control char" (rejects "\"a\nb\"") true;
  check "lone surrogate" (rejects "\"\\ud800\"") true;
  check "surrogate pair" (accepts "\"\\ud83d\\ude00\"") true;
  check "unicode escape" (Obs.Json.parse "\"\\u00e9\"" = Ok (Obs.Json.String "é")) true;
  check "scientific notation" (accepts "[1e3, -0.5E-2, 0]") true;
  check "leading zero" (rejects "[01]") true

(* Bounded parsing: size and nesting violations are typed [Limit] (the
   service answers request_too_large), while bad JSON stays [Syntax]. *)
let test_json_limits () =
  let open Obs.Json in
  let limit = function
    | Error (Limit _) -> true
    | _ -> false
  in
  check "byte cap rejects up front"
    (limit (parse_with_limits { max_bytes = 8; max_depth = 512 } "[1,2,3,4,5]"))
    true;
  let deep = String.make 20 '[' ^ "1" ^ String.make 20 ']' in
  check "depth cap rejects nesting"
    (limit (parse_with_limits { max_bytes = max_int; max_depth = 8 } deep))
    true;
  check "within limits parses"
    (Result.is_ok (parse_with_limits { max_bytes = max_int; max_depth = 64 } deep))
    true;
  check "bad JSON is Syntax, not Limit"
    (match parse_with_limits default_limits "[[[" with
    | Error (Syntax _) -> true
    | _ -> false)
    true;
  check "depth violations name the limit"
    (match parse_with_limits { max_bytes = max_int; max_depth = 2 } "[[[1]]]" with
    | Error (Limit { message }) -> message <> ""
    | _ -> false)
    true

(* Newline framing: emit_line output re-parses frame by frame, embedded
   newlines are escaped (never frame boundaries), and one bad line doesn't
   poison its neighbours. *)
let test_json_framing () =
  let open Obs.Json in
  let values =
    [
      Obj [ ("a", int 1); ("s", String "x\ny") ];
      List [ Bool true; Null ];
      Number 2.5;
    ]
  in
  let path = Filename.temp_file "serprop_frames" ".jsonl" in
  let oc = open_out path in
  List.iter (emit_line oc) values;
  output_string oc "\nnot json\n";
  close_out oc;
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  (match parse_lines content with
  | [ Ok a; Ok b; Ok c; Error (Syntax _) ] ->
    check "frames round-trip"
      (List.map to_string [ a; b; c ] = List.map to_string values)
      true
  | frames ->
    Alcotest.fail
      (Printf.sprintf "expected 3 ok frames + 1 syntax error, got %d frames"
         (List.length frames)));
  check "limits apply per frame"
    (match parse_lines ~limits:{ max_bytes = 4; max_depth = 512 } "[1]\n[1,2,3]" with
    | [ Ok _; Error (Limit _) ] -> true
    | _ -> false)
    true

(* --- timer --------------------------------------------------------------- *)

let test_timer_wall_clock () =
  let t0 = Report.Timer.now_seconds () in
  Unix.sleepf 0.05;
  let elapsed = Report.Timer.now_seconds () -. t0 in
  check "elapsed >= 0 across a sleep" (elapsed >= 0.0) true;
  check
    (Printf.sprintf "wall clock sees the sleep (%.3fs)" elapsed)
    (elapsed >= 0.04)
    true;
  let (), timed = Report.Timer.time (fun () -> Unix.sleepf 0.05) in
  check "Timer.time measures wall time" (timed >= 0.04) true;
  (* The regression this PR fixes: the old Sys.time-based Timer charged a
     sleeping (or parallel) section ~0 CPU seconds and called it elapsed
     time.  CPU time must now be asked for explicitly. *)
  let (), cpu = Report.Timer.time_cpu (fun () -> Unix.sleepf 0.05) in
  check "cpu clock does not see the sleep" (cpu < 0.04) true

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter/gauge/histogram" `Quick
            test_counter_gauge_histogram;
          Alcotest.test_case "registration idempotent" `Quick
            test_registration_idempotent;
          Alcotest.test_case "null registry" `Quick test_null_registry;
          Alcotest.test_case "merge algebra" `Quick
            test_merge_associative_commutative;
          Alcotest.test_case "concurrent writes exact" `Quick
            test_concurrent_writes_exact;
        ] );
      ( "trace",
        [
          Alcotest.test_case "round trip" `Quick test_trace_round_trip;
          Alcotest.test_case "null tracer" `Quick test_trace_null;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "strict parser" `Quick test_json_parser_strict;
          Alcotest.test_case "bounded parsing" `Quick test_json_limits;
          Alcotest.test_case "newline framing" `Quick test_json_framing;
        ] );
      ( "timer",
        [ Alcotest.test_case "wall vs cpu" `Quick test_timer_wall_clock ] );
    ]
