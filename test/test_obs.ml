(* Tests for the Obs telemetry layer: metrics registry semantics (merge
   algebra, domain-safety), trace-event JSON shape, the hand-rolled JSON
   round trip, the Timer wall/CPU clock split, and the request-scoped
   observability surface: correlation contexts, the leveled log sink, the
   flight-recorder ring, the Prometheus exposition, the progress meter,
   and exception-safe artifact finalization. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- metrics: basics ----------------------------------------------------- *)

let test_counter_gauge_histogram () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "c" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  let g = Obs.Metrics.gauge m "g" in
  Obs.Metrics.set_gauge g 2.5;
  let h = Obs.Metrics.histogram ~buckets:[| 1.0; 10.0 |] m "h" in
  Obs.Metrics.observe h 0.5;
  Obs.Metrics.observe h 5.0;
  Obs.Metrics.observe h 50.0;
  let s = Obs.Metrics.snapshot m in
  check_int "counter" 5 (Obs.Metrics.counter_value s "c");
  check_int "absent counter is 0" 0 (Obs.Metrics.counter_value s "nope");
  Alcotest.(check (option (float 0.0))) "gauge" (Some 2.5)
    (Obs.Metrics.gauge_value s "g");
  match Obs.Metrics.histogram_value s "h" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some h ->
    check_int "observations" 3 h.Obs.Metrics.count;
    Alcotest.(check (float 1e-9)) "sum" 55.5 h.Obs.Metrics.sum;
    Alcotest.(check (array int)) "bucket counts" [| 1; 1; 1 |]
      h.Obs.Metrics.counts

let test_registration_idempotent () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr (Obs.Metrics.counter m "c");
  Obs.Metrics.incr (Obs.Metrics.counter m "c");
  check_int "same cell by name" 2
    (Obs.Metrics.counter_value (Obs.Metrics.snapshot m) "c");
  check "mismatched histogram bounds rejected"
    (match Obs.Metrics.histogram ~buckets:[| 1.0 |] m "h" with
    | _ -> (
      match Obs.Metrics.histogram ~buckets:[| 2.0 |] m "h" with
      | _ -> false
      | exception Invalid_argument _ -> true))
    true

let test_null_registry () =
  let m = Obs.Metrics.null in
  check "is_null" (Obs.Metrics.is_null m) true;
  Obs.Metrics.incr (Obs.Metrics.counter m "c");
  Obs.Metrics.observe (Obs.Metrics.histogram m "h") 1.0;
  Obs.Metrics.set_gauge (Obs.Metrics.gauge m "g") 1.0;
  check "null snapshot is empty"
    (Obs.Metrics.snapshot m = Obs.Metrics.empty)
    true

(* --- metrics: merge algebra ---------------------------------------------- *)

let snap build =
  let m = Obs.Metrics.create () in
  build m;
  Obs.Metrics.snapshot m

let test_merge_associative_commutative () =
  let a =
    snap (fun m ->
        Obs.Metrics.add (Obs.Metrics.counter m "c") 1;
        Obs.Metrics.set_gauge (Obs.Metrics.gauge m "g") 1.0;
        Obs.Metrics.observe (Obs.Metrics.histogram ~buckets:[| 1.0 |] m "h") 0.5)
  in
  let b =
    snap (fun m ->
        Obs.Metrics.add (Obs.Metrics.counter m "c") 10;
        Obs.Metrics.add (Obs.Metrics.counter m "only-b") 7;
        Obs.Metrics.set_gauge (Obs.Metrics.gauge m "g") 3.0;
        Obs.Metrics.observe (Obs.Metrics.histogram ~buckets:[| 1.0 |] m "h") 2.0)
  in
  let c =
    snap (fun m ->
        Obs.Metrics.add (Obs.Metrics.counter m "c") 100;
        Obs.Metrics.set_gauge (Obs.Metrics.gauge m "g") 2.0)
  in
  let open Obs.Metrics in
  check "associative" (merge (merge a b) c = merge a (merge b c)) true;
  check "commutative" (merge a b = merge b a) true;
  check "empty is identity" (merge a empty = a && merge empty a = a) true;
  let abc = merge (merge a b) c in
  check_int "counters add" 111 (counter_value abc "c");
  check_int "union over names" 7 (counter_value abc "only-b");
  Alcotest.(check (option (float 0.0))) "gauges take the max" (Some 3.0)
    (gauge_value abc "g");
  (match histogram_value abc "h" with
  | Some h ->
    check_int "histograms add counts" 2 h.count;
    Alcotest.(check (array int)) "bucket-wise" [| 1; 1 |] h.counts
  | None -> Alcotest.fail "merged histogram missing");
  check "mismatched bounds rejected"
    (let bad =
       snap (fun m ->
           Obs.Metrics.observe
             (Obs.Metrics.histogram ~buckets:[| 9.0 |] m "h")
             0.5)
     in
     match merge a bad with
     | _ -> false
     | exception Invalid_argument _ -> true)
    true

(* --- metrics: domain-safety ---------------------------------------------- *)

let test_concurrent_writes_exact () =
  let m = Obs.Metrics.create () in
  let per_domain = 25_000 and domains = 4 in
  let body () =
    (* Register inside the domain: registration takes the mutex, updates
       do not — both paths must be domain-safe. *)
    let c = Obs.Metrics.counter m "c" in
    let h = Obs.Metrics.histogram ~buckets:[| 0.5 |] m "h" in
    for i = 1 to per_domain do
      Obs.Metrics.incr c;
      Obs.Metrics.observe h (if i land 1 = 0 then 0.25 else 0.75)
    done
  in
  let spawned = List.init domains (fun _ -> Domain.spawn body) in
  (* Snapshots under concurrent writes must not crash or tear a cell. *)
  let mid = Obs.Metrics.snapshot m in
  check "mid-flight snapshot is sane"
    (Obs.Metrics.counter_value mid "c" <= domains * per_domain)
    true;
  List.iter Domain.join spawned;
  let s = Obs.Metrics.snapshot m in
  check_int "no lost counter updates" (domains * per_domain)
    (Obs.Metrics.counter_value s "c");
  (match Obs.Metrics.histogram_value s "h" with
  | Some h ->
    check_int "no lost observations" (domains * per_domain) h.Obs.Metrics.count;
    check_int "bucket splits exactly"
      (domains * per_domain / 2)
      h.Obs.Metrics.counts.(0)
  | None -> Alcotest.fail "histogram missing");
  (* A snapshot is an immutable value: later writes don't reach into it. *)
  Obs.Metrics.incr (Obs.Metrics.counter m "c");
  check_int "snapshot isolated from later writes" (domains * per_domain)
    (Obs.Metrics.counter_value s "c")

(* --- trace --------------------------------------------------------------- *)

let test_trace_round_trip () =
  let t = Obs.Trace.create () in
  Obs.Trace.span t ~cat:"test" "outer" (fun () ->
      Obs.Trace.span t ~cat:"test" "inner" (fun () -> ());
      Obs.Trace.instant t "tick");
  Domain.join
    (Domain.spawn (fun () -> Obs.Trace.span t ~cat:"test" "worker" (fun () -> ())));
  check "span result passes through"
    (Obs.Trace.span t "r" (fun () -> 42) = 42)
    true;
  check "E emitted when f raises"
    (match Obs.Trace.span t "raiser" (fun () -> failwith "boom") with
    | () -> false
    | exception Failure _ -> true)
    true;
  let json = Obs.Trace.to_json t in
  (* The JSON round trip: what we emit, our strict parser accepts. *)
  let reparsed =
    match Obs.Json.parse (Obs.Json.to_string ~pretty:true json) with
    | Ok v -> v
    | Error msg -> Alcotest.fail ("trace JSON does not reparse: " ^ msg)
  in
  let events =
    match
      Option.bind (Obs.Json.member "traceEvents" reparsed) Obs.Json.to_list
    with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents list"
  in
  let str name e = Option.bind (Obs.Json.member name e) Obs.Json.to_string_value in
  let num name e = Option.bind (Obs.Json.member name e) Obs.Json.to_number in
  let phs p = List.filter (fun e -> str "ph" e = Some p) events in
  check_int "balanced B/E" (List.length (phs "B")) (List.length (phs "E"));
  check_int "five spans" 5 (List.length (phs "B"));
  check_int "one instant" 1 (List.length (phs "i"));
  let tids = List.sort_uniq compare (List.filter_map (num "tid") events) in
  check "per-domain tids" (List.length tids >= 2) true;
  let named =
    List.filter_map
      (fun e ->
        if str "ph" e = Some "M" && str "name" e = Some "thread_name" then
          num "tid" e
        else None)
      (phs "M")
  in
  check "every tid has a thread_name record"
    (List.for_all (fun tid -> List.mem tid named) tids)
    true;
  (* Chronological, non-negative microsecond timestamps. *)
  let ts =
    List.filter_map (num "ts")
      (List.filter (fun e -> str "ph" e <> Some "M") events)
  in
  check "timestamps non-negative" (List.for_all (fun t -> t >= 0.0) ts) true;
  check "timestamps chronological"
    (List.for_all2 ( <= ) ts (List.tl ts @ [ infinity ]))
    true

let test_trace_null () =
  let t = Obs.Trace.null in
  check "is_null" (Obs.Trace.is_null t) true;
  Obs.Trace.span t "x" (fun () -> ());
  Obs.Trace.instant t "y";
  check "null records nothing" (Obs.Trace.events t = []) true

(* --- json ---------------------------------------------------------------- *)

let test_json_round_trip () =
  let v =
    Obs.Json.(
      Obj
        [
          ("s", String "a \"b\" \\ \n \t \x01 é");
          ("n", Number 0.1);
          ("i", int (-42));
          ("big", Number 1.7976931348623157e308);
          ("null", Null);
          ("b", Bool false);
          ("l", List [ Number 1.0; String ""; Obj [] ]);
        ])
  in
  (match Obs.Json.parse (Obs.Json.to_string v) with
  | Ok v' -> check "compact round trip" (v = v') true
  | Error m -> Alcotest.fail m);
  (match Obs.Json.parse (Obs.Json.to_string ~pretty:true v) with
  | Ok v' -> check "pretty round trip" (v = v') true
  | Error m -> Alcotest.fail m);
  check "nan emits as null"
    (Obs.Json.to_string (Obs.Json.Number Float.nan) = "null")
    true

let test_json_parser_strict () =
  let rejects s =
    match Obs.Json.parse s with Ok _ -> false | Error _ -> true
  in
  let accepts s =
    match Obs.Json.parse s with Ok _ -> true | Error _ -> false
  in
  check "trailing garbage" (rejects "{} x") true;
  check "trailing comma" (rejects "[1,]") true;
  check "unterminated string" (rejects "\"abc") true;
  check "raw control char" (rejects "\"a\nb\"") true;
  check "lone surrogate" (rejects "\"\\ud800\"") true;
  check "surrogate pair" (accepts "\"\\ud83d\\ude00\"") true;
  check "unicode escape" (Obs.Json.parse "\"\\u00e9\"" = Ok (Obs.Json.String "é")) true;
  check "scientific notation" (accepts "[1e3, -0.5E-2, 0]") true;
  check "leading zero" (rejects "[01]") true

(* Bounded parsing: size and nesting violations are typed [Limit] (the
   service answers request_too_large), while bad JSON stays [Syntax]. *)
let test_json_limits () =
  let open Obs.Json in
  let limit = function
    | Error (Limit _) -> true
    | _ -> false
  in
  check "byte cap rejects up front"
    (limit (parse_with_limits { max_bytes = 8; max_depth = 512 } "[1,2,3,4,5]"))
    true;
  let deep = String.make 20 '[' ^ "1" ^ String.make 20 ']' in
  check "depth cap rejects nesting"
    (limit (parse_with_limits { max_bytes = max_int; max_depth = 8 } deep))
    true;
  check "within limits parses"
    (Result.is_ok (parse_with_limits { max_bytes = max_int; max_depth = 64 } deep))
    true;
  check "bad JSON is Syntax, not Limit"
    (match parse_with_limits default_limits "[[[" with
    | Error (Syntax _) -> true
    | _ -> false)
    true;
  check "depth violations name the limit"
    (match parse_with_limits { max_bytes = max_int; max_depth = 2 } "[[[1]]]" with
    | Error (Limit { message }) -> message <> ""
    | _ -> false)
    true

(* Newline framing: emit_line output re-parses frame by frame, embedded
   newlines are escaped (never frame boundaries), and one bad line doesn't
   poison its neighbours. *)
let test_json_framing () =
  let open Obs.Json in
  let values =
    [
      Obj [ ("a", int 1); ("s", String "x\ny") ];
      List [ Bool true; Null ];
      Number 2.5;
    ]
  in
  let path = Filename.temp_file "serprop_frames" ".jsonl" in
  let oc = open_out path in
  List.iter (emit_line oc) values;
  output_string oc "\nnot json\n";
  close_out oc;
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  (match parse_lines content with
  | [ Ok a; Ok b; Ok c; Error (Syntax _) ] ->
    check "frames round-trip"
      (List.map to_string [ a; b; c ] = List.map to_string values)
      true
  | frames ->
    Alcotest.fail
      (Printf.sprintf "expected 3 ok frames + 1 syntax error, got %d frames"
         (List.length frames)));
  check "limits apply per frame"
    (match parse_lines ~limits:{ max_bytes = 4; max_depth = 512 } "[1]\n[1,2,3]" with
    | [ Ok _; Error (Limit _) ] -> true
    | _ -> false)
    true

(* --- timer --------------------------------------------------------------- *)

let test_timer_wall_clock () =
  let t0 = Report.Timer.now_seconds () in
  Unix.sleepf 0.05;
  let elapsed = Report.Timer.now_seconds () -. t0 in
  check "elapsed >= 0 across a sleep" (elapsed >= 0.0) true;
  check
    (Printf.sprintf "wall clock sees the sleep (%.3fs)" elapsed)
    (elapsed >= 0.04)
    true;
  let (), timed = Report.Timer.time (fun () -> Unix.sleepf 0.05) in
  check "Timer.time measures wall time" (timed >= 0.04) true;
  (* The regression this PR fixes: the old Sys.time-based Timer charged a
     sleeping (or parallel) section ~0 CPU seconds and called it elapsed
     time.  CPU time must now be asked for explicitly. *)
  let (), cpu = Report.Timer.time_cpu (fun () -> Unix.sleepf 0.05) in
  check "cpu clock does not see the sleep" (cpu < 0.04) true

(* --- ctx ------------------------------------------------------------------ *)

let test_ctx_ids_and_baggage () =
  let a = Obs.Ctx.create () and b = Obs.Ctx.create () in
  check "minted ids are distinct" (Obs.Ctx.id a <> Obs.Ctx.id b) true;
  let c = Obs.Ctx.create ~id:"explicit" ~baggage:[ ("tool", "test") ] () in
  Alcotest.(check string) "explicit id wins" "explicit" (Obs.Ctx.id c);
  check "baggage lookup" (Obs.Ctx.find c "tool" = Some "test") true;
  check "absent baggage" (Obs.Ctx.find c "nope" = None) true;
  let c' = Obs.Ctx.with_baggage c [ ("k", "v") ] in
  check "with_baggage appends without losing the rest"
    (Obs.Ctx.find c' "k" = Some "v" && Obs.Ctx.find c' "tool" = Some "test")
    true

let test_ctx_args () =
  let c = Obs.Ctx.create ~id:"rid" ~baggage:[ ("tool", "test") ] () in
  (match Obs.Ctx.to_args c with
  | ("request_id", Obs.Json.String "rid") :: rest ->
    check "baggage keys are ctx.-prefixed"
      (List.assoc_opt "ctx.tool" rest = Some (Obs.Json.String "test"))
      true
  | _ -> Alcotest.fail "to_args must lead with request_id");
  check "args_of None is empty" (Obs.Ctx.args_of None = []) true;
  check "args_of Some matches to_args"
    (Obs.Ctx.args_of (Some c) = Obs.Ctx.to_args c)
    true

(* --- log ------------------------------------------------------------------ *)

let test_log_null_default () =
  Obs.Hooks.reset ();
  check "sink is null by default" (Obs.Log.is_null (Obs.Log.sink ())) true;
  Obs.Recorder.clear ();
  Obs.Log.emit Obs.Log.Info "test.unsunk";
  check "the recorder is fed even with a null sink"
    (List.exists
       (fun e -> e.Obs.Recorder.event = "test.unsunk")
       (Obs.Recorder.dump ()))
    true

let test_log_min_level_filter () =
  let seen = ref [] in
  Obs.Hooks.set_logger
    (Obs.Log.create ~min_level:Obs.Log.Warn (fun e ->
         seen := e.Obs.Log.event :: !seen));
  Obs.Log.emit Obs.Log.Debug "a";
  Obs.Log.emit Obs.Log.Info "b";
  Obs.Log.emit Obs.Log.Warn "c";
  Obs.Log.emit Obs.Log.Error "d";
  Obs.Hooks.reset ();
  check "only warn and above reach the sink" (List.rev !seen = [ "c"; "d" ]) true;
  check "hooks reset restores the null sink"
    (Obs.Log.is_null (Obs.Log.sink ()))
    true

let test_log_event_json () =
  let ctx = Obs.Ctx.create ~id:"rid-1" ~baggage:[ ("tool", "t") ] () in
  let captured = ref None in
  Obs.Hooks.set_logger
    (Obs.Log.create ~min_level:Obs.Log.Debug (fun e -> captured := Some e));
  Obs.Log.emit ~ctx ~fields:[ ("k", Obs.Json.int 7) ] Obs.Log.Info "x.y";
  Obs.Hooks.reset ();
  match !captured with
  | None -> Alcotest.fail "event never reached the sink"
  | Some e ->
    check "ctx id travels on the event" (e.Obs.Log.request_id = Some "rid-1") true;
    let reparsed =
      match Obs.Json.parse (Obs.Json.to_string (Obs.Log.event_to_json e)) with
      | Ok v -> v
      | Error m -> Alcotest.fail ("event JSON does not reparse: " ^ m)
    in
    let str k = Option.bind (Obs.Json.member k reparsed) Obs.Json.to_string_value in
    check "level serialized" (str "level" = Some "info") true;
    check "event name serialized" (str "event" = Some "x.y") true;
    check "request_id serialized" (str "request_id" = Some "rid-1") true;
    check "baggage flattened into fields" (str "ctx.tool" = Some "t") true;
    check "ts and domain present"
      (Obs.Json.member "ts" reparsed <> None
      && Obs.Json.member "domain" reparsed <> None)
      true;
    check "custom field kept"
      (Option.bind (Obs.Json.member "k" reparsed) Obs.Json.to_number = Some 7.0)
      true

let test_log_level_strings () =
  List.iter
    (fun l ->
      check
        (Printf.sprintf "round-trips %s" (Obs.Log.level_to_string l))
        (Obs.Log.level_of_string (Obs.Log.level_to_string l) = Some l)
        true)
    [ Obs.Log.Debug; Obs.Log.Info; Obs.Log.Warn; Obs.Log.Error ];
  check "unknown level rejected" (Obs.Log.level_of_string "chatty" = None) true

(* --- recorder ------------------------------------------------------------- *)

let test_recorder_wrap () =
  Obs.Hooks.reset ();
  Obs.Recorder.clear ();
  let n = Obs.Recorder.capacity + 100 in
  for i = 1 to n do
    Obs.Log.emit ~fields:[ ("i", Obs.Json.int i) ] Obs.Log.Info "wrap"
  done;
  let d = Obs.Recorder.dump () in
  check
    (Printf.sprintf "retained bounded by capacity (%d <= %d)" (List.length d)
       Obs.Recorder.capacity)
    (List.length d <= Obs.Recorder.capacity && d <> [])
    true;
  let has i =
    List.exists
      (fun e ->
        List.assoc_opt "i" e.Obs.Recorder.fields
        = Some (Obs.Json.Number (float_of_int i)))
      d
  in
  check "the newest entry survived the wrap" (has n) true;
  check "the oldest entry was overwritten" (not (has 1)) true;
  Obs.Recorder.clear ();
  check "clear empties the ring" (Obs.Recorder.dump () = []) true

let test_recorder_multidomain () =
  Obs.Hooks.reset ();
  Obs.Recorder.clear ();
  let worker tag () =
    for _ = 1 to 10 do
      Obs.Log.emit Obs.Log.Info tag
    done
  in
  let d1 = Domain.spawn (worker "dom.a") and d2 = Domain.spawn (worker "dom.b") in
  Domain.join d1;
  Domain.join d2;
  Obs.Log.emit Obs.Log.Info "dom.main";
  let d = Obs.Recorder.dump () in
  let count tag =
    List.length (List.filter (fun e -> e.Obs.Recorder.event = tag) d)
  in
  check "dump merges every domain's ring"
    (count "dom.a" = 10 && count "dom.b" = 10 && count "dom.main" = 1)
    true;
  let ts = List.map (fun e -> e.Obs.Recorder.ts) d in
  check "dump is sorted by timestamp"
    (List.for_all2 ( <= ) ts (List.tl ts @ [ infinity ]))
    true

let test_recorder_dump_file () =
  Obs.Hooks.reset ();
  Obs.Recorder.clear ();
  let ctx = Obs.Ctx.create ~id:"rid-dump" () in
  Obs.Log.emit ~ctx Obs.Log.Warn "incident";
  let path = Filename.temp_file "serprop_recorder" ".json" in
  Obs.Recorder.dump_to_file path;
  let v =
    match Obs.Json.parse_file path with
    | Ok v -> v
    | Error m -> Alcotest.fail ("dump does not reparse: " ^ m)
  in
  Sys.remove path;
  check "dump declares the capacity"
    (Option.bind (Obs.Json.member "capacity" v) Obs.Json.to_number
    = Some (float_of_int Obs.Recorder.capacity))
    true;
  let events =
    Option.value ~default:[]
      (Option.bind (Obs.Json.member "events" v) Obs.Json.to_list)
  in
  check "the incident is in the dump, correlated"
    (List.exists
       (fun e ->
         Option.bind (Obs.Json.member "event" e) Obs.Json.to_string_value
         = Some "incident"
         && Option.bind (Obs.Json.member "request_id" e)
              Obs.Json.to_string_value
            = Some "rid-dump")
       events)
    true

(* --- prom ----------------------------------------------------------------- *)

let prom_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1))
  in
  at 0

let test_prom_exposition () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.add (Obs.Metrics.counter m "a.count") 3;
  Obs.Metrics.set_gauge (Obs.Metrics.gauge m "q.depth") 2.0;
  let h = Obs.Metrics.histogram ~buckets:[| 1.0; 10.0 |] m "lat.ms" in
  Obs.Metrics.observe h 0.5;
  Obs.Metrics.observe h 5.0;
  Obs.Metrics.observe h 50.0;
  let s = Obs.Metrics.snapshot m in
  let e = Obs.Prom.of_snapshot s in
  (match Obs.Prom.lint e with
  | Ok () -> check "exposition lints clean" true true
  | Error msgs -> Alcotest.fail (String.concat "; " msgs));
  check "dots sanitized to underscores" (prom_contains e "a_count 3") true;
  check "+Inf bucket closes every histogram"
    (prom_contains e "lat_ms_bucket{le=\"+Inf\"} 3")
    true;
  check "histogram sum and count emitted"
    (prom_contains e "lat_ms_count 3" && prom_contains e "lat_ms_sum")
    true;
  (* The writer is atomic (tmp + rename); what lands on disk re-lints. *)
  let path = Filename.temp_file "serprop_prom" ".txt" in
  Obs.Prom.write_file path s;
  let ic = open_in_bin path in
  let reread =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove path;
  check "written exposition identical" (reread = e) true

let test_prom_lint_rejects () =
  let bad = [ "1bad_name 3\n"; "# TYPE c counter\nother_name 1\n" ] in
  List.iter
    (fun b -> check "malformed exposition rejected" (Result.is_error (Obs.Prom.lint b)) true)
    bad;
  let non_monotone =
    "# TYPE h histogram\n\
     h_bucket{le=\"1\"} 5\n\
     h_bucket{le=\"+Inf\"} 3\n\
     h_sum 1\n\
     h_count 3\n"
  in
  check "non-cumulative buckets rejected"
    (Result.is_error (Obs.Prom.lint non_monotone))
    true

let test_prom_sanitize () =
  let s = Obs.Prom.sanitize "9bad.name with spaces" in
  check "sanitized names fit the Prometheus charset"
    (s <> ""
    && (not (s.[0] >= '0' && s.[0] <= '9'))
    && String.for_all
         (fun c ->
           (c >= 'a' && c <= 'z')
           || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9')
           || c = '_' || c = ':')
         s)
    true

(* --- progress ------------------------------------------------------------- *)

let test_progress_silent_by_default () =
  Obs.Hooks.reset ();
  check "no renderer installed after reset" (Obs.Hooks.progress () = None) true;
  (* A meter with no renderer must be a safe no-op end to end. *)
  let p = Obs.Progress.create ~label:"quiet" ~total:10 () in
  Obs.Progress.report p 5;
  Obs.Progress.report p 10;
  Obs.Progress.finish p

let test_progress_rate_limit_and_finish () =
  let updates = ref 0 and finals = ref [] in
  let renderer =
    {
      Obs.Hooks.update = (fun _ -> incr updates);
      finalize = (fun line -> finals := line :: !finals);
    }
  in
  let p =
    Obs.Progress.create ~renderer ~min_interval:3600.0 ~label:"sweep"
      ~total:100 ()
  in
  for i = 1 to 99 do
    Obs.Progress.report p i
  done;
  check "reports are rate-limited" (!updates = 1) true;
  Obs.Progress.report p 100;
  check "done = total renders regardless of the rate limit" (!updates = 2) true;
  Obs.Progress.finish p;
  Obs.Progress.finish p;
  Obs.Progress.report p 100;
  check "finalize fires exactly once and closes the meter"
    (List.length !finals = 1 && !updates = 2)
    true;
  check "the final line carries the label and totals"
    (match !finals with
    | [ line ] ->
      prom_contains line "sweep" && prom_contains line "100/100"
    | _ -> false)
    true

(* --- artifacts ------------------------------------------------------------ *)

let test_artifacts_written_on_raise () =
  Obs.Hooks.reset ();
  Obs.Recorder.clear ();
  let tmp suffix = Filename.temp_file "serprop_artifact" suffix in
  let mp = tmp ".json"
  and tp = tmp ".json"
  and pp = tmp ".txt"
  and rp = tmp ".json" in
  let written = ref [] in
  check "the run's exception propagates"
    (match
       Obs.Artifacts.with_files ~metrics:mp ~trace:tp ~prom:pp
         ~recorder_dump:rp
         ~on_written:(fun ~kind path -> written := (kind, path) :: !written)
         (fun () ->
           Obs.Metrics.incr (Obs.Metrics.counter (Obs.Hooks.metrics ()) "c");
           Obs.Trace.span (Obs.Hooks.tracer ()) "doomed" (fun () -> ());
           Obs.Log.emit Obs.Log.Error "test.boom";
           failwith "boom")
     with
    | _ -> false
    | exception Failure _ -> true)
    true;
  Obs.Hooks.reset ();
  check "all four artifacts written despite the raise"
    (List.length !written = 4)
    true;
  check "metrics artifact holds the run's counter"
    (match Obs.Json.parse_file mp with
    | Ok v ->
      Option.bind (Obs.Json.member "counters" v) (Obs.Json.member "c") <> None
    | Error _ -> false)
    true;
  check "trace artifact reparses with the doomed span"
    (match Obs.Json.parse_file tp with
    | Ok v -> Obs.Json.member "traceEvents" v <> None
    | Error _ -> false)
    true;
  let ic = open_in_bin pp in
  let prom =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  check "prometheus artifact lints" (Obs.Prom.lint prom = Ok ()) true;
  check "recorder dump holds the pre-raise event"
    (match Obs.Json.parse_file rp with
    | Ok v -> (
      match Option.bind (Obs.Json.member "events" v) Obs.Json.to_list with
      | Some events ->
        List.exists
          (fun e ->
            Option.bind (Obs.Json.member "event" e) Obs.Json.to_string_value
            = Some "test.boom")
          events
      | None -> false)
    | Error _ -> false)
    true;
  List.iter Sys.remove [ mp; tp; pp; rp ]

let test_artifacts_shielded_errors () =
  Obs.Hooks.reset ();
  let errors = ref [] in
  let result =
    Obs.Artifacts.with_files
      ~metrics:"/nonexistent-dir/serprop-artifact.json"
      ~on_error:(fun ~kind path _msg -> errors := (kind, path) :: !errors)
      (fun () -> 42)
  in
  Obs.Hooks.reset ();
  check "an unwritable artifact path cannot break the run" (result = 42) true;
  check "the failure is reported through on_error"
    (List.length !errors = 1)
    true

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter/gauge/histogram" `Quick
            test_counter_gauge_histogram;
          Alcotest.test_case "registration idempotent" `Quick
            test_registration_idempotent;
          Alcotest.test_case "null registry" `Quick test_null_registry;
          Alcotest.test_case "merge algebra" `Quick
            test_merge_associative_commutative;
          Alcotest.test_case "concurrent writes exact" `Quick
            test_concurrent_writes_exact;
        ] );
      ( "trace",
        [
          Alcotest.test_case "round trip" `Quick test_trace_round_trip;
          Alcotest.test_case "null tracer" `Quick test_trace_null;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "strict parser" `Quick test_json_parser_strict;
          Alcotest.test_case "bounded parsing" `Quick test_json_limits;
          Alcotest.test_case "newline framing" `Quick test_json_framing;
        ] );
      ( "timer",
        [ Alcotest.test_case "wall vs cpu" `Quick test_timer_wall_clock ] );
      ( "ctx",
        [
          Alcotest.test_case "ids and baggage" `Quick test_ctx_ids_and_baggage;
          Alcotest.test_case "span/log args" `Quick test_ctx_args;
        ] );
      ( "log",
        [
          Alcotest.test_case "null by default" `Quick test_log_null_default;
          Alcotest.test_case "min-level filter" `Quick test_log_min_level_filter;
          Alcotest.test_case "event JSON shape" `Quick test_log_event_json;
          Alcotest.test_case "level strings" `Quick test_log_level_strings;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "ring wraps keeping the newest" `Quick
            test_recorder_wrap;
          Alcotest.test_case "multi-domain merge" `Quick
            test_recorder_multidomain;
          Alcotest.test_case "dump file shape" `Quick test_recorder_dump_file;
        ] );
      ( "prom",
        [
          Alcotest.test_case "exposition lints and round-trips" `Quick
            test_prom_exposition;
          Alcotest.test_case "lint rejects corrupt input" `Quick
            test_prom_lint_rejects;
          Alcotest.test_case "name sanitization" `Quick test_prom_sanitize;
        ] );
      ( "progress",
        [
          Alcotest.test_case "silent by default" `Quick
            test_progress_silent_by_default;
          Alcotest.test_case "rate limit and finish" `Quick
            test_progress_rate_limit_and_finish;
        ] );
      ( "artifacts",
        [
          Alcotest.test_case "written on raise" `Quick
            test_artifacts_written_on_raise;
          Alcotest.test_case "shielded write errors" `Quick
            test_artifacts_shielded_errors;
        ] );
    ]
