(* obs_smoke: CI gate for the telemetry surface (dune build @obs-smoke).

   The alias first runs the real CLI —

     ser_estimate embedded:s27 --supervised --metrics M --trace T

   — then runs this validator on the two files it wrote.  The checks pin
   the acceptance contract of the telemetry layer:

   - both artifacts parse under the strict Obs.Json parser;
   - the metrics snapshot has nonzero epp.sites_analyzed and
     parallel.tasks_executed counters (the pipeline was actually observed,
     not just the registry created);
   - the shared-analysis contract held for the whole run:
     analysis.topo.computed is exactly 1 (one topological sort served every
     engine), analysis.cache.hit is nonzero (the context was actually
     reused), and analysis.topo.direct_calls is 0 (no engine bypassed the
     context);
   - the trace is Perfetto-loadable in shape: a traceEvents list whose
     B/E events balance per name, with >= 3 distinct phase names, numeric
     pid/tid on every event, and a thread_name metadata record for every
     tid that appears.

   It then exercises the flight-recorder / correlation contract in-process:
   a supervised sweep with an injected all-rung fault (one quarantine) and
   one with a zero budget (deadline expiry), each under its own Obs.Ctx —
   the recorder dump must re-parse and contain the quarantine and expiry
   events under their respective request ids, and the Prometheus exposition
   of the live registry must pass the OCaml-side lint.

   Usage: obs_smoke.exe METRICS.json TRACE.json *)

let failures = ref 0

let check what ok =
  if ok then Fmt.pr "ok: %s@." what
  else begin
    incr failures;
    Fmt.pr "FAIL: %s@." what
  end

let parse_or_die label path =
  match Obs.Json.parse_file path with
  | Ok v ->
    Fmt.pr "ok: %s parses as JSON (%s)@." label path;
    v
  | Error msg ->
    Fmt.pr "FAIL: %s does not parse (%s): %s@." label path msg;
    exit 1

let counter_value metrics name =
  match Option.bind (Obs.Json.member "counters" metrics) (Obs.Json.member name) with
  | Some v -> Option.value ~default:0.0 (Obs.Json.to_number v)
  | None -> 0.0

let () =
  let metrics_path, trace_path =
    match Sys.argv with
    | [| _; m; t |] -> (m, t)
    | _ ->
      prerr_endline "usage: obs_smoke METRICS.json TRACE.json";
      exit 2
  in
  let metrics = parse_or_die "metrics snapshot" metrics_path in
  let trace = parse_or_die "trace" trace_path in

  let sites = counter_value metrics "epp.sites_analyzed" in
  let tasks = counter_value metrics "parallel.tasks_executed" in
  check
    (Printf.sprintf "epp.sites_analyzed > 0 (got %.0f)" sites)
    (sites > 0.0);
  check
    (Printf.sprintf "parallel.tasks_executed > 0 (got %.0f)" tasks)
    (tasks > 0.0);

  (* The shared-analysis acceptance criterion: the whole supervised run cost
     one topological sort, everything after it hit the memoized context. *)
  let topo = counter_value metrics "analysis.topo.computed" in
  let hits = counter_value metrics "analysis.cache.hit" in
  let direct = counter_value metrics "analysis.topo.direct_calls" in
  check
    (Printf.sprintf "analysis.topo.computed = 1 (got %.0f)" topo)
    (topo = 1.0);
  check
    (Printf.sprintf "analysis.cache.hit > 0 (got %.0f)" hits)
    (hits > 0.0);
  check
    (Printf.sprintf "analysis.topo.direct_calls = 0 (got %.0f)" direct)
    (direct = 0.0);

  let events =
    match Option.bind (Obs.Json.member "traceEvents" trace) Obs.Json.to_list with
    | Some l -> l
    | None ->
      check "trace has a traceEvents list" false;
      []
  in
  let field name e = Obs.Json.member name e in
  let str name e = Option.bind (field name e) Obs.Json.to_string_value in
  let num name e = Option.bind (field name e) Obs.Json.to_number in
  let ph e = Option.value ~default:"?" (str "ph" e) in
  (* Per-name B/E balance: a Perfetto duration stack never goes negative
     and ends empty. *)
  let opens = Hashtbl.create 16 in
  let balanced = ref true in
  List.iter
    (fun e ->
      let name = Option.value ~default:"?" (str "name" e) in
      match ph e with
      | "B" ->
        Hashtbl.replace opens name
          (1 + Option.value ~default:0 (Hashtbl.find_opt opens name))
      | "E" ->
        let d = Option.value ~default:0 (Hashtbl.find_opt opens name) - 1 in
        if d < 0 then balanced := false else Hashtbl.replace opens name d
      | _ -> ())
    events;
  Hashtbl.iter (fun _ d -> if d <> 0 then balanced := false) opens;
  check "B/E events balance per phase name" !balanced;

  let phase_names =
    List.sort_uniq compare
      (List.filter_map
         (fun e -> if ph e = "B" then str "name" e else None)
         events)
  in
  check
    (Printf.sprintf ">= 3 distinct phase names (got %d: %s)"
       (List.length phase_names)
       (String.concat ", " phase_names))
    (List.length phase_names >= 3);

  check "every event has numeric pid/tid/ts"
    (List.for_all
       (fun e -> num "pid" e <> None && num "tid" e <> None && num "ts" e <> None)
       events);

  let tids = List.sort_uniq compare (List.filter_map (num "tid") events) in
  let named_tids =
    List.sort_uniq compare
      (List.filter_map
         (fun e ->
           if ph e = "M" && str "name" e = Some "thread_name" then num "tid" e
           else None)
         events)
  in
  check
    (Printf.sprintf "every tid has thread_name metadata (%d tid(s))"
       (List.length tids))
    (List.for_all (fun t -> List.mem t named_tids) tids);

  (* --- in-process: correlation ids, flight recorder, Prometheus ---------- *)
  Obs.Hooks.reset ();
  Obs.Recorder.clear ();
  let registry = Obs.Metrics.create () in
  Obs.Hooks.set_metrics registry;
  let circuit =
    match Circuit_gen.Embedded.find "s27" with
    | Some f -> f ()
    | None ->
      prerr_endline "embedded s27 missing";
      exit 2
  in
  let engine = Epp.Epp_engine.create circuit in
  (* Request 1: site 0 fails every rung -> exactly one quarantine. *)
  let ctx_q = Obs.Ctx.create ~baggage:[ ("tool", "obs_smoke") ] () in
  let fail_site0 site = if site = 0 then failwith "injected fault" in
  let outcome_q =
    Epp.Supervisor.sweep ~ctx:ctx_q ~domains:1 ~batch:Epp.Supervisor.Never
      ~kernel:(fun ws site ->
        fail_site0 site;
        Epp.Epp_engine.Workspace.analyze_site ws site)
      ~reference:(fun engine site ->
        fail_site0 site;
        Epp.Epp_engine.analyze_site engine site)
      engine [ 0; 1; 2 ]
  in
  check
    (Printf.sprintf "injected sweep quarantined exactly site 0 (got %d)"
       outcome_q.Epp.Supervisor.stats.Epp.Diag.quarantined)
    (outcome_q.Epp.Supervisor.stats.Epp.Diag.quarantined = 1);
  (* Request 2: zero budget -> deadline expiry before any site starts. *)
  let ctx_d = Obs.Ctx.create ~baggage:[ ("tool", "obs_smoke") ] () in
  let outcome_d =
    Epp.Supervisor.sweep ~ctx:ctx_d ~domains:1
      ~deadline:(Obs.Deadline.of_budget_ms 0.0) engine [ 0; 1; 2 ]
  in
  check "zero-budget sweep reports Deadline_expired"
    (match outcome_d.Epp.Supervisor.completion with
    | Epp.Diag.Deadline_expired _ -> true
    | Epp.Diag.Complete -> false);

  (* The flight recorder must hold both incidents, each under its own
     request id, and the dump must survive a write + strict re-parse. *)
  let dump_path = "obs_smoke_recorder.json" in
  Obs.Recorder.dump_to_file dump_path;
  let dump = parse_or_die "flight-recorder dump" dump_path in
  let dump_events =
    Option.value ~default:[]
      (Option.bind (Obs.Json.member "events" dump) Obs.Json.to_list)
  in
  let has_event ~name ~rid =
    List.exists
      (fun e ->
        Option.bind (Obs.Json.member "event" e) Obs.Json.to_string_value
          = Some name
        && Option.bind (Obs.Json.member "request_id" e)
             Obs.Json.to_string_value
           = Some rid)
      dump_events
  in
  check
    (Printf.sprintf "recorder holds supervisor.quarantine under %s"
       (Obs.Ctx.id ctx_q))
    (has_event ~name:"supervisor.quarantine" ~rid:(Obs.Ctx.id ctx_q));
  check
    (Printf.sprintf "recorder holds supervisor.deadline_expired under %s"
       (Obs.Ctx.id ctx_d))
    (has_event ~name:"supervisor.deadline_expired" ~rid:(Obs.Ctx.id ctx_d));
  check "recorder dump events carry ts/level/domain"
    (dump_events <> []
    && List.for_all
         (fun e ->
           Obs.Json.member "ts" e <> None
           && Obs.Json.member "level" e <> None
           && Obs.Json.member "domain" e <> None)
         dump_events);

  (* The Prometheus exposition of the live registry (counters + the sweep's
     histograms) must pass the exposition lint, from memory and from disk. *)
  let snap = Obs.Metrics.snapshot registry in
  let exposition = Obs.Prom.of_snapshot snap in
  (match Obs.Prom.lint exposition with
  | Ok () -> check "Prometheus exposition lints clean" true
  | Error msgs ->
    check
      (Printf.sprintf "Prometheus exposition lints clean (%s)"
         (String.concat "; " msgs))
      false);
  let prom_path = "obs_smoke_prom.txt" in
  Obs.Prom.write_file prom_path snap;
  let reread =
    let ic = open_in_bin prom_path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  check "written exposition re-lints clean" (Obs.Prom.lint reread = Ok ());
  check "exposition carries the supervisor counters"
    (let contains needle =
       let nh = String.length reread and nn = String.length needle in
       let rec at i =
         i + nn <= nh && (String.sub reread i nn = needle || at (i + 1))
       in
       at 0
     in
     contains "supervisor_quarantined" && contains "supervisor_deadline_expired");

  if !failures > 0 then begin
    Fmt.pr "obs smoke: %d check(s) FAILED@." !failures;
    exit 1
  end
  else Fmt.pr "obs smoke: all checks passed@."
