(* obs_smoke: CI gate for the telemetry surface (dune build @obs-smoke).

   The alias first runs the real CLI —

     ser_estimate embedded:s27 --supervised --metrics M --trace T

   — then runs this validator on the two files it wrote.  The checks pin
   the acceptance contract of the telemetry layer:

   - both artifacts parse under the strict Obs.Json parser;
   - the metrics snapshot has nonzero epp.sites_analyzed and
     parallel.tasks_executed counters (the pipeline was actually observed,
     not just the registry created);
   - the shared-analysis contract held for the whole run:
     analysis.topo.computed is exactly 1 (one topological sort served every
     engine), analysis.cache.hit is nonzero (the context was actually
     reused), and analysis.topo.direct_calls is 0 (no engine bypassed the
     context);
   - the trace is Perfetto-loadable in shape: a traceEvents list whose
     B/E events balance per name, with >= 3 distinct phase names, numeric
     pid/tid on every event, and a thread_name metadata record for every
     tid that appears.

   Usage: obs_smoke.exe METRICS.json TRACE.json *)

let failures = ref 0

let check what ok =
  if ok then Fmt.pr "ok: %s@." what
  else begin
    incr failures;
    Fmt.pr "FAIL: %s@." what
  end

let parse_or_die label path =
  match Obs.Json.parse_file path with
  | Ok v ->
    Fmt.pr "ok: %s parses as JSON (%s)@." label path;
    v
  | Error msg ->
    Fmt.pr "FAIL: %s does not parse (%s): %s@." label path msg;
    exit 1

let counter_value metrics name =
  match Option.bind (Obs.Json.member "counters" metrics) (Obs.Json.member name) with
  | Some v -> Option.value ~default:0.0 (Obs.Json.to_number v)
  | None -> 0.0

let () =
  let metrics_path, trace_path =
    match Sys.argv with
    | [| _; m; t |] -> (m, t)
    | _ ->
      prerr_endline "usage: obs_smoke METRICS.json TRACE.json";
      exit 2
  in
  let metrics = parse_or_die "metrics snapshot" metrics_path in
  let trace = parse_or_die "trace" trace_path in

  let sites = counter_value metrics "epp.sites_analyzed" in
  let tasks = counter_value metrics "parallel.tasks_executed" in
  check
    (Printf.sprintf "epp.sites_analyzed > 0 (got %.0f)" sites)
    (sites > 0.0);
  check
    (Printf.sprintf "parallel.tasks_executed > 0 (got %.0f)" tasks)
    (tasks > 0.0);

  (* The shared-analysis acceptance criterion: the whole supervised run cost
     one topological sort, everything after it hit the memoized context. *)
  let topo = counter_value metrics "analysis.topo.computed" in
  let hits = counter_value metrics "analysis.cache.hit" in
  let direct = counter_value metrics "analysis.topo.direct_calls" in
  check
    (Printf.sprintf "analysis.topo.computed = 1 (got %.0f)" topo)
    (topo = 1.0);
  check
    (Printf.sprintf "analysis.cache.hit > 0 (got %.0f)" hits)
    (hits > 0.0);
  check
    (Printf.sprintf "analysis.topo.direct_calls = 0 (got %.0f)" direct)
    (direct = 0.0);

  let events =
    match Option.bind (Obs.Json.member "traceEvents" trace) Obs.Json.to_list with
    | Some l -> l
    | None ->
      check "trace has a traceEvents list" false;
      []
  in
  let field name e = Obs.Json.member name e in
  let str name e = Option.bind (field name e) Obs.Json.to_string_value in
  let num name e = Option.bind (field name e) Obs.Json.to_number in
  let ph e = Option.value ~default:"?" (str "ph" e) in
  (* Per-name B/E balance: a Perfetto duration stack never goes negative
     and ends empty. *)
  let opens = Hashtbl.create 16 in
  let balanced = ref true in
  List.iter
    (fun e ->
      let name = Option.value ~default:"?" (str "name" e) in
      match ph e with
      | "B" ->
        Hashtbl.replace opens name
          (1 + Option.value ~default:0 (Hashtbl.find_opt opens name))
      | "E" ->
        let d = Option.value ~default:0 (Hashtbl.find_opt opens name) - 1 in
        if d < 0 then balanced := false else Hashtbl.replace opens name d
      | _ -> ())
    events;
  Hashtbl.iter (fun _ d -> if d <> 0 then balanced := false) opens;
  check "B/E events balance per phase name" !balanced;

  let phase_names =
    List.sort_uniq compare
      (List.filter_map
         (fun e -> if ph e = "B" then str "name" e else None)
         events)
  in
  check
    (Printf.sprintf ">= 3 distinct phase names (got %d: %s)"
       (List.length phase_names)
       (String.concat ", " phase_names))
    (List.length phase_names >= 3);

  check "every event has numeric pid/tid/ts"
    (List.for_all
       (fun e -> num "pid" e <> None && num "tid" e <> None && num "ts" e <> None)
       events);

  let tids = List.sort_uniq compare (List.filter_map (num "tid") events) in
  let named_tids =
    List.sort_uniq compare
      (List.filter_map
         (fun e ->
           if ph e = "M" && str "name" e = Some "thread_name" then num "tid" e
           else None)
         events)
  in
  check
    (Printf.sprintf "every tid has thread_name metadata (%d tid(s))"
       (List.length tids))
    (List.for_all (fun t -> List.mem t named_tids) tids);

  if !failures > 0 then begin
    Fmt.pr "obs smoke: %d check(s) FAILED@." !failures;
    exit 1
  end
  else Fmt.pr "obs smoke: all checks passed@."
