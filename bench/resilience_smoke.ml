(* resilience_smoke: CI gate for the supervised sweep (dune build
   @resilience-smoke).

   On the embedded s27 netlist, with k sites deterministically poisoned on
   both rungs through the supervisor's fault-injection seam, the sweep must

   - complete and quarantine exactly those k sites (typed faults on both
     rungs),
   - leave every non-poisoned site bit-identical to the unsupervised sweep,
   - and, after a simulated mid-run kill, resume from its checkpoint to a
     final report bit-identical to an uninterrupted run (same total FIT).

   Any drift exits non-zero and fails the alias.

   With --json, also writes BENCH_resilience.json (same shape as
   BENCH_epp_kernel.json: a benchmark tag, per-check results, and the
   run's metrics snapshot) so the robustness path joins the bench
   trajectory. *)

exception Killed

let bits = Int64.bits_of_float

let same_result (a : Epp.Epp_engine.site_result) (b : Epp.Epp_engine.site_result) =
  a.Epp.Epp_engine.site = b.Epp.Epp_engine.site
  && bits a.Epp.Epp_engine.p_sensitized = bits b.Epp.Epp_engine.p_sensitized
  && a.Epp.Epp_engine.cone_size = b.Epp.Epp_engine.cone_size
  && List.for_all2
       (fun (o1, p1) (o2, p2) -> o1 = o2 && bits p1 = bits p2)
       a.Epp.Epp_engine.per_observation b.Epp.Epp_engine.per_observation

let failures = ref 0
let checks = ref []

let check what ok =
  checks := (what, ok) :: !checks;
  if ok then Fmt.pr "ok: %s@." what
  else begin
    incr failures;
    Fmt.pr "FAIL: %s@." what
  end

let () =
  let json = Array.exists (String.equal "--json") Sys.argv in
  (* Live metrics for the whole run so the supervisor / parallel counters
     land in the artifact. *)
  let metrics = Obs.Metrics.create () in
  Obs.Hooks.set_metrics metrics;
  let circuit = Circuit_gen.Embedded.s27 () in
  let engine = Epp.Epp_engine.create circuit in
  let n = Netlist.Circuit.node_count circuit in
  let poisoned = [ 2; 9; 14 ] in
  let k = List.length poisoned in
  let poison site = List.mem site poisoned in
  let kernel ws site =
    if poison site then failwith "injected kernel fault"
    else Epp.Epp_engine.Workspace.analyze_site ws site
  in
  let reference engine site =
    if poison site then failwith "injected reference fault"
    else Epp.Epp_engine.analyze_site engine site
  in
  let unsupervised = Epp.Epp_engine.analyze_all engine in

  (* 1. Fault isolation: exactly k quarantines, survivors bit-identical. *)
  let outcome = Epp.Supervisor.sweep_all ~domains:2 ~kernel ~reference engine in
  let qs = Epp.Supervisor.quarantines outcome in
  check
    (Printf.sprintf "exactly %d quarantined sites (got %d)" k (List.length qs))
    (List.length qs = k);
  check "quarantined exactly the poisoned sites"
    (List.map (fun q -> q.Epp.Diag.site) qs = poisoned);
  check "both rungs recorded a typed fault per quarantine"
    (List.for_all (fun q -> List.length q.Epp.Diag.faults = 2) qs);
  let survivors =
    List.filter (fun (r : Epp.Epp_engine.site_result) -> not (poison r.Epp.Epp_engine.site))
      unsupervised
  in
  check "non-poisoned sites bit-identical to the unsupervised sweep"
    (List.for_all2 same_result survivors (Epp.Supervisor.results outcome));

  (* 2. Kill/resume: interrupt after the first chunk's snapshot, resume, and
     compare totals against the uninterrupted supervised run. *)
  let path = Filename.temp_file "serprop_resilience" ".ck" in
  let fp = Report.Checkpoint.fingerprint engine in
  let saved = ref [] in
  (try
     ignore
       (Epp.Supervisor.sweep ~domains:2 ~chunk_size:5 ~kernel ~reference
          ~on_chunk:(fun ~done_count ~total:_ entries ->
            saved := entries @ !saved;
            Report.Checkpoint.save path
              {
                Report.Checkpoint.fingerprint = fp;
                total_sites = n;
                entries = List.sort compare !saved;
              };
            if done_count >= 5 then raise Killed)
          engine
          (List.init n Fun.id))
   with Killed -> ());
  (match
     Report.Checkpoint.supervised_sweep ~domains:2 ~chunk_size:5 ~checkpoint:path
       ~resume:true ~kernel ~reference engine
   with
  | Error e -> check (Report.Checkpoint.error_message e) false
  | Ok resumed ->
    check "resume replayed the snapshot"
      (resumed.Epp.Supervisor.stats.Epp.Diag.resumed = 5);
    check "resumed sweep covers every site"
      (List.length resumed.Epp.Supervisor.entries = n);
    let total results =
      (Epp.Ser_estimator.of_site_results circuit results).Epp.Ser_estimator.total_fit
    in
    let clean_fit = total (Epp.Supervisor.results outcome) in
    let resumed_fit = total (Epp.Supervisor.results resumed) in
    check
      (Printf.sprintf "resumed total FIT bit-identical (%h vs %h)" resumed_fit
         clean_fit)
      (bits resumed_fit = bits clean_fit));
  Sys.remove path;

  Fmt.pr "@.%a@." Epp.Diag.pp_stats outcome.Epp.Supervisor.stats;
  if json then begin
    let s = outcome.Epp.Supervisor.stats in
    let open Obs.Json in
    to_file ~pretty:true "BENCH_resilience.json"
      (Obj
         [
           ("benchmark", String "resilience_supervised_sweep");
           ("circuit", String "s27");
           ("domains", int 2);
           ("poisoned_sites", List (List.map int poisoned));
           ( "checks",
             List
               (List.rev_map
                  (fun (what, ok) ->
                    Obj [ ("name", String what); ("ok", Bool ok) ])
                  !checks) );
           ("failures", int !failures);
           ( "stats",
             Obj
               [
                 ("total", int s.Epp.Diag.total);
                 ("batch_ok", int s.Epp.Diag.batch_ok);
                 ("kernel_ok", int s.Epp.Diag.kernel_ok);
                 ("degraded", int s.Epp.Diag.degraded);
                 ("quarantined", int s.Epp.Diag.quarantined);
                 ("resumed", int s.Epp.Diag.resumed);
               ] );
           ("metrics", Obs.Metrics.to_json (Obs.Metrics.snapshot metrics));
         ]);
    Fmt.pr "wrote BENCH_resilience.json@."
  end;
  if !failures > 0 then begin
    Fmt.pr "resilience smoke: %d check(s) FAILED@." !failures;
    exit 1
  end
  else Fmt.pr "resilience smoke: all checks passed@."
