(* Benchmark harness.

   Two parts, matching the paper's evaluation artifacts:

   1. Bechamel microbenchmarks — one Test.make per pipeline stage and per
      ablation: signal probability engines, the analytical per-site EPP
      (the SysT quantity), the random-simulation baseline per site (the
      SimT quantity), the polarity-blind ablation, and the whole-circuit
      (no path construction) ablation.

   2. The Table-2 harness — regenerates the paper's only results table on
      profile-matched synthetic circuits: SysT, SimT, %Dif, SPT, ISP, ESP
      per circuit, printed next to the published values, with the paper's
      two headline claims (average accuracy, speedup orders of magnitude)
      checked at the end.

   Also prints the Fig. 1 regeneration (the paper's only figure with
   numerical content).

   3. The kernel-vs-reference sweep — times the whole-circuit EPP pass
      through the boxed reference engine and through the allocation-free
      workspace kernel, checks 1e-12 agreement, and can record the perf
      trajectory in BENCH_epp_kernel.json.

   See the flag summary above the entry point at the bottom of this file. *)

open Bechamel
open Toolkit

(* --- fixtures ---------------------------------------------------------------- *)

let s27 = Circuit_gen.Embedded.s27 ()
let s953 = Circuit_gen.Random_dag.generate ~seed:1 Circuit_gen.Profiles.s953
let s1196 = Circuit_gen.Random_dag.generate ~seed:1 Circuit_gen.Profiles.s1196
let s344 = Circuit_gen.Random_dag.generate ~seed:4 Circuit_gen.Profiles.s344

let mid_gate_site circuit =
  (* A deterministic mid-depth gate: median node id among gates. *)
  let gates = ref [] in
  for v = Netlist.Circuit.node_count circuit - 1 downto 0 do
    if Netlist.Circuit.is_gate circuit v then gates := v :: !gates
  done;
  List.nth !gates (List.length !gates / 2)

let sp_of circuit = (Sigprob.Sp_sequential.compute circuit).Sigprob.Sp_sequential.result

let sp953 = sp_of s953
let sp1196 = sp_of s1196
let sp27 = sp_of s27

let engine circuit sp = Epp.Epp_engine.create ~sp circuit

let s953_text = Bench_format.Printer.circuit_to_string s953

(* --- microbenchmarks ---------------------------------------------------------- *)

let micro_tests () =
  let epp953 = engine s953 sp953 in
  let epp953_shared = epp953 in
  let epp1196 = engine s1196 sp1196 in
  let epp27 = engine s27 sp27 in
  let naive953 = Epp.Epp_engine.create ~mode:Epp.Epp_engine.Naive ~sp:sp953 s953 in
  let whole953 = Epp.Epp_engine.create ~restrict_to_cone:false ~sp:sp953 s953 in
  let site27 = mid_gate_site s27 in
  let site953 = mid_gate_site s953 in
  let site1196 = mid_gate_site s1196 in
  let input_sp v =
    if Netlist.Circuit.is_ff s953 v then sp953.Sigprob.Sp.values.(v) else 0.5
  in
  let fault953 =
    Fault_sim.Epp_sim.create ~config:{ Fault_sim.Epp_sim.vectors = 10_000; input_sp } s953
  in
  let rng = Rng.create ~seed:9 in
  [
    Test.make ~name:"sp/topological:s953" (Staged.stage (fun () ->
        Sigprob.Sp_topological.compute s953));
    Test.make ~name:"sp/sequential-fixpoint:s953" (Staged.stage (fun () ->
        Sigprob.Sp_sequential.compute s953));
    Test.make ~name:"sp/montecarlo-16k:s953" (Staged.stage (fun () ->
        Sigprob.Sp_montecarlo.compute ~rng:(Rng.copy rng) ~vectors:16_384 s953));
    Test.make ~name:"epp/site:s27" (Staged.stage (fun () ->
        Epp.Epp_engine.analyze_site epp27 site27));
    Test.make ~name:"epp/site:s953" (Staged.stage (fun () ->
        Epp.Epp_engine.analyze_site epp953 site953));
    Test.make ~name:"epp/site:s1196" (Staged.stage (fun () ->
        Epp.Epp_engine.analyze_site epp1196 site1196));
    Test.make ~name:"ablation/naive-rules:s953" (Staged.stage (fun () ->
        Epp.Epp_engine.analyze_site naive953 site953));
    Test.make ~name:"ablation/no-cone-restriction:s953" (Staged.stage (fun () ->
        Epp.Epp_engine.analyze_site whole953 site953));
    Test.make ~name:"baseline/fault-sim-10k:s953" (Staged.stage (fun () ->
        Fault_sim.Epp_sim.estimate_site fault953 ~rng:(Rng.copy rng) site953));
    Test.make ~name:"io/parse-bench:s953" (Staged.stage (fun () ->
        Bench_format.Parser.parse_string ~name:"s953" s953_text));
    Test.make ~name:"alternative/observability-all-sites:s953" (Staged.stage (fun () ->
        Sigprob.Observability.compute ~sp:sp953 s953));
    Test.make ~name:"oracle/bdd-build:s344" (Staged.stage (fun () ->
        Circuit_bdd.build ~node_limit:8_000_000 s344));
    Test.make ~name:"transform/optimize:s953" (Staged.stage (fun () ->
        Netlist.Transform.optimize s953));
    Test.make ~name:"epp/all-sites-sequential:s953" (Staged.stage (fun () ->
        Epp.Epp_engine.analyze_all epp953_shared));
    Test.make ~name:"epp/all-sites-collapsed:s953" (Staged.stage (fun () ->
        Epp.Collapse.analyze_all epp953_shared));
    (* The allocation-free workspace kernel against the boxed reference
       (epp/site:* above is the reference path). *)
    (let ws = Epp.Epp_engine.Workspace.create epp953 in
     Test.make ~name:"epp/site-kernel:s953" (Staged.stage (fun () ->
         Epp.Epp_engine.Workspace.analyze_site ws site953)));
    (let ws = Epp.Epp_engine.Workspace.create epp1196 in
     Test.make ~name:"epp/site-kernel:s1196" (Staged.stage (fun () ->
         Epp.Epp_engine.Workspace.analyze_site ws site1196)));
  ]

let run_micro () =
  let tests = Test.make_grouped ~name:"serprop" ~fmt:"%s %s" (micro_tests ()) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some [ x ] -> x
        | Some _ | None -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) !rows in
  print_endline "== Microbenchmarks (per call, monotonic clock) ==";
  Report.Table.print
    ~align:Report.Table.[ Left; Right ]
    ~header:[ "benchmark"; "time" ]
    (List.map
       (fun (name, ns) ->
         let human =
           if Float.is_nan ns then "n/a"
           else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [ name; human ])
       rows);
  print_newline ()

(* --- Fig. 1 regeneration ------------------------------------------------------- *)

let run_fig1 () =
  print_endline "== Fig. 1 regeneration (the paper's worked example) ==";
  let a = Epp.Prob4.error_site in
  let e = Epp.Rules.propagate Netlist.Gate.Not [| a |] in
  let g = Epp.Rules.propagate Netlist.Gate.And [| e; Epp.Prob4.of_sp 0.7 |] in
  let d = Epp.Rules.propagate Netlist.Gate.And [| a; Epp.Prob4.of_sp 0.2 |] in
  let h = Epp.Rules.propagate Netlist.Gate.Or [| Epp.Prob4.of_sp 0.3; d; g |] in
  Fmt.pr "P(H) computed:  %a@." Epp.Prob4.pp h;
  Fmt.pr "P(H) published: 0.0420(a) + 0.3920(a\xCC\x84) + 0.3980(1) + 0.1680(0)@.";
  Fmt.pr "P_sensitized(A) = %.4f (= 0.042 + 0.392)@.@." (Epp.Prob4.p_error h)

(* --- Table 2 harness ------------------------------------------------------------ *)

(* Per-profile experiment budget: large circuits get smaller samples, like
   the paper ("a limited number of gates of the circuits are simulated"). *)
let config_for (p : Circuit_gen.Profiles.t) ~quick =
  let scale = if quick then 4 else 1 in
  let g = p.Circuit_gen.Profiles.gates in
  if g <= 1500 then
    { Report.Experiment.seed = 42; sim_vectors = 10_000 / scale;
      sp_mc_vectors = 1_048_576 / scale; max_sim_sites = 50 / scale;
      max_epp_sites = None;
      scalar_sim_sites = 4 }
  else if g <= 10_000 then
    { Report.Experiment.seed = 42; sim_vectors = 5_000 / scale;
      sp_mc_vectors = 262_144 / scale; max_sim_sites = 24 / scale;
      max_epp_sites = Some (2_000 / scale);
      scalar_sim_sites = 3 }
  else
    { Report.Experiment.seed = 42; sim_vectors = 3_000 / scale;
      sp_mc_vectors = 65_536 / scale; max_sim_sites = 12 / scale;
      max_epp_sites = Some (600 / scale);
      scalar_sim_sites = 2 }

let run_table2 ~quick () =
  print_endline "== Table 2 regeneration (profile-matched synthetic circuits) ==";
  let profiles =
    if quick then
      [ Circuit_gen.Profiles.s953; Circuit_gen.Profiles.s1196; Circuit_gen.Profiles.s1494 ]
    else Circuit_gen.Profiles.table2
  in
  let rows =
    List.map
      (fun p ->
        let config = config_for p ~quick in
        let row, elapsed =
          Report.Timer.time (fun () -> Report.Experiment.run_profile ~config ~seed:1 p)
        in
        Fmt.epr "  [%s done in %.1f s]@." p.Circuit_gen.Profiles.name elapsed;
        row)
      profiles
  in
  print_endline (Report.Experiment.render_rows rows);
  print_newline ();
  print_endline "== Paper vs measured ==";
  print_endline (Report.Experiment.render_comparison rows);
  print_newline ();
  (* The paper's two headline claims. *)
  let n = float_of_int (List.length rows) in
  let avg f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows /. n in
  let avg_dif = avg (fun r -> r.Report.Experiment.dif_percent) in
  let log10 x = log x /. log 10.0 in
  let avg_esp_mag = avg (fun r -> log10 r.Report.Experiment.esp) in
  let avg_isp_mag = avg (fun r -> log10 r.Report.Experiment.isp) in
  Fmt.pr "claim 1 (accuracy): paper avg %%Dif 5.4%% -> measured avg %%Dif %.1f%% (accuracy %.1f%%)@."
    avg_dif (100.0 -. avg_dif);
  Fmt.pr
    "claim 2 (speedup): paper ESP 4-5 orders, ISP 2-3 orders -> measured ESP 10^%.1f, ISP 10^%.1f@."
    avg_esp_mag avg_isp_mag;
  Fmt.pr
    "(Speedup magnitudes scale with the baseline's vector budget and our bit-parallel@.";
  Fmt.pr " 64x-faster simulator; see EXPERIMENTS.md for the shape argument.)@."

(* --- kernel vs reference: the perf-trajectory benchmark -----------------------

   Times the whole-circuit EPP sweep (analyze_all) twice per fixture: once
   through the boxed reference engine (O(circuit) allocation and topo-order
   filtering per site) and once through the allocation-free workspace kernel
   (CSR cone DFS, epoch-stamped marks, SoA vectors, cone-local ordering).
   Verifies the results agree within 1e-12 site by site — the kernel's
   bit-compatibility contract — and optionally records sites/sec and the
   speedups in BENCH_epp_kernel.json so later PRs can track the trajectory.

   Two fixtures, two regimes:
   - a >= 5k-gate parity tree (cone-local regime: every cone is a root path,
     so the reference's O(circuit)-per-site overhead dominates and the
     kernel's O(cone log cone) bound shows as an order-of-magnitude win;
     real netlists sit between the regimes, nearer this one);
   - the s9234-profile random DAG (dense-reachability regime: the generator's
     long-range edges percolate, cones cover ~half the circuit, both engines
     are bound by the same rule arithmetic, and the kernel's win is the
     constant factor of allocation-freedom).  [min_speedup] is asserted only
     where the margin is structural, not timing noise. *)

type kernel_fixture = {
  kf_label : string;
  kf_build : unit -> Netlist.Circuit.t;
  kf_min_speedup : float option;  (* kernel vs reference *)
  kf_min_batch_speedup : float option;  (* batch vs reference, single domain *)
}

(* The speedup floors gate where the margin is structural: the parity tree's
   kernel win (cone-locality) and the dense fixtures' batch win (one level
   pass per 62 sites vs one graph walk per site) are orders of magnitude, so
   a conservative floor catches a real cliff without timing-noise flakes. *)
let kernel_fixtures ~smoke =
  if smoke then
    [
      { kf_label = "parity-1024 (tree, cone-local)";
        kf_build = (fun () -> Circuit_gen.Structured.parity_tree ~width:1024 ());
        kf_min_speedup = None;
        kf_min_batch_speedup = None };
      { kf_label = "s1196-profile (dense random DAG)";
        kf_build = (fun () -> Circuit_gen.Random_dag.generate ~seed:1 Circuit_gen.Profiles.s1196);
        kf_min_speedup = None;
        kf_min_batch_speedup = Some 3.0 };
    ]
  else
    [
      { kf_label = "parity-8192 (tree, cone-local)";
        kf_build = (fun () -> Circuit_gen.Structured.parity_tree ~width:16384 ());
        kf_min_speedup = Some 5.0;
        kf_min_batch_speedup = None };
      { kf_label = "s9234-profile (dense random DAG)";
        kf_build = (fun () -> Circuit_gen.Random_dag.generate ~seed:1 Circuit_gen.Profiles.s9234);
        kf_min_speedup = None;
        kf_min_batch_speedup = Some 10.0 };
      { kf_label = "s13207-profile (dense random DAG)";
        kf_build = (fun () -> Circuit_gen.Random_dag.generate ~seed:1 Circuit_gen.Profiles.s13207);
        kf_min_speedup = None;
        kf_min_batch_speedup = Some 10.0 };
    ]

let batch_scaling_domains = [ 1; 2; 4 ]

type kernel_row = {
  kr_label : string;
  kr_nodes : int;
  kr_gates : int;
  kr_reference_s : float;
  kr_kernel_s : float;
  kr_speedup : float;
  kr_max_diff : float;
  kr_batch_s : float;  (* single-domain level-synchronous block sweep *)
  kr_batch_bitwise : bool;  (* batch vs kernel: every float bit-identical *)
  kr_batch_max_diff : float;
  kr_batch_scaling : (int * float) list;  (* domains -> seconds *)
  kr_metrics : Obs.Json.t;  (* live-sink snapshot of one extra kernel sweep *)
}

let run_kernel_fixture f =
  let c = f.kf_build () in
  let engine = Epp.Epp_engine.create ~sp:(sp_of c) c in
  let n = Netlist.Circuit.node_count c in
  let sites = List.init n Fun.id in
  let sites_arr = Array.init n Fun.id in
  let reference, kr_reference_s =
    Report.Timer.time (fun () -> List.map (Epp.Epp_engine.analyze_site engine) sites)
  in
  let kernel, kr_kernel_s =
    Report.Timer.time (fun () -> Epp.Epp_engine.analyze_all engine)
  in
  let kr_max_diff =
    List.fold_left2
      (fun acc (a : Epp.Epp_engine.site_result) (b : Epp.Epp_engine.site_result) ->
        Float.max acc
          (Float.abs (a.Epp.Epp_engine.p_sensitized -. b.Epp.Epp_engine.p_sensitized)))
      0.0 reference kernel
  in
  (* Best of three: the batch sweep is cheap enough to repeat, and the
     shared container's run-to-run noise (~30% observed) would otherwise
     dominate the speedup ratio the floors gate on.  The minimum is the
     standard low-noise estimator for a deterministic computation. *)
  let batch, kr_batch_s =
    let best = ref None in
    for _ = 1 to 3 do
      let r, t =
        Report.Timer.time (fun () ->
            Epp.Epp_batch.analyze_site_array engine sites_arr)
      in
      match !best with
      | Some (_, t0) when t0 <= t -> ()
      | _ -> best := Some (r, t)
    done;
    Option.get !best
  in
  (* The batch contract is stronger than the kernel's 1e-12: bit-identical,
     including the per-observation entries. *)
  let bits = Int64.bits_of_float in
  let kr_batch_bitwise = ref true in
  let kr_batch_max_diff = ref 0.0 in
  List.iteri
    (fun i (k : Epp.Epp_engine.site_result) ->
      let b = batch.(i) in
      kr_batch_max_diff :=
        Float.max !kr_batch_max_diff
          (Float.abs (k.Epp.Epp_engine.p_sensitized -. b.Epp.Epp_engine.p_sensitized));
      if
        bits k.Epp.Epp_engine.p_sensitized <> bits b.Epp.Epp_engine.p_sensitized
        || not
             (List.for_all2
                (fun (o1, p1) (o2, p2) -> o1 = o2 && bits p1 = bits p2)
                k.Epp.Epp_engine.per_observation b.Epp.Epp_engine.per_observation)
      then kr_batch_bitwise := false)
    kernel;
  let kr_batch_scaling =
    List.map
      (fun domains ->
        let _, t =
          Report.Timer.time (fun () ->
              Epp.Parallel.analyze_sites_batched ~domains engine sites_arr)
        in
        (domains, t))
      batch_scaling_domains
  in
  (* One more sweep with live sinks so the trajectory records the phase
     breakdown (cone sizes, per-phase seconds).  Runs after the timed
     passes, so the recorded timings stay no-op-sink numbers. *)
  let live = Obs.Metrics.create () in
  Obs.Hooks.set_metrics live;
  ignore (Epp.Epp_engine.analyze_all engine);
  Obs.Hooks.reset ();
  {
    kr_label = f.kf_label;
    kr_nodes = n;
    kr_gates = Netlist.Circuit.gate_count c;
    kr_reference_s;
    kr_kernel_s;
    kr_speedup = kr_reference_s /. kr_kernel_s;
    kr_max_diff;
    kr_batch_s;
    kr_batch_bitwise = !kr_batch_bitwise;
    kr_batch_max_diff = !kr_batch_max_diff;
    kr_batch_scaling;
    kr_metrics = Obs.Metrics.to_json (Obs.Metrics.snapshot live);
  }

(* Instrumentation-overhead guard.  The hooks are compiled in
   unconditionally, so the question a perf trajectory must answer is: what
   does the default no-op sink cost on the hot path?  There is no
   hook-free build to diff against at runtime, so each round times the
   kernel sweep three times back to back on one deterministic fixture —
   live sinks, a discarded flush pass, then two no-op passes — and the
   guard statistic compares 20%-trimmed means of the interleaved no-op
   buckets:

   - the two no-op passes of a round run back to back under the same
     machine load; single-sweep timings carry a heavy right tail (GC
     slices, a shared box), which symmetric trimming removes, so the
     trimmed means differ only by a systematic offset.  Since the no-op
     path is a handful of immediate pattern matches per site, any real
     no-op overhead is below it.  @bench-smoke asserts the delta < 2%.
   - the no-op passes run with the full observability surface in its
     default shipping state: the flight recorder armed (it is always on)
     and a log sink installed but silent (Error-only threshold, discarding
     writer) — the guard covers the logging layer, not just metrics.
   - the live-pass delta is the real cost of turning metrics + tracing
     on, reported (not asserted — it is allowed to cost something). *)

type overhead = {
  oh_fixture : string;
  oh_reps : int;
  oh_noop_s : float;  (* trimmed mean, first no-op bucket *)
  oh_noop_check_s : float;  (* trimmed mean, second no-op bucket *)
  oh_live_s : float;  (* trimmed mean, live-sink bucket *)
  oh_noop_delta_percent : float;
  oh_live_overhead_percent : float;
}

(* Mean of the central 60% — drops the [n/5] smallest and largest samples. *)
let trimmed_mean a =
  let s = Array.copy a in
  Array.sort compare s;
  let n = Array.length s in
  let k = n / 5 in
  let sum = ref 0.0 in
  for i = k to n - 1 - k do
    sum := !sum +. s.(i)
  done;
  !sum /. float_of_int (n - (2 * k))

let measure_overhead ?(reps = 15) () =
  let c = Circuit_gen.Structured.parity_tree ~width:16384 () in
  let engine = Epp.Epp_engine.create ~sp:(sp_of c) c in
  let sweep () = ignore (Epp.Epp_engine.analyze_all engine) in
  let live_metrics = Obs.Metrics.create () in
  let live_tracer = Obs.Trace.create () in
  Obs.Hooks.reset ();
  sweep ();
  (* warm up caches / page in the engine *)
  let t_a = Array.make reps 0.0 in
  let t_b = Array.make reps 0.0 in
  let t_live = Array.make reps 0.0 in
  (* Every timed pass starts from a freshly collected heap: the sweep
     allocates its result list, so major-GC slices otherwise land
     quasi-periodically and can alias onto the bucket alternation,
     charging one bucket a GC slice the other never pays.  From a
     collected heap the sweep's own GC work is the same every time — and
     a no-op pass directly after a live one would otherwise measure the
     live pass's leftover GC debt, not the hook cost. *)
  let timed () =
    Gc.full_major ();
    snd (Report.Timer.time sweep)
  in
  (* "Silent" = the shipping default plus an installed-but-filtering log
     sink: every Debug/Info event still pays the level check (and the
     always-on flight recorder), but nothing is formatted or written. *)
  let silent_logger = Obs.Log.create ~min_level:Obs.Log.Error (fun _ -> ()) in
  for i = 0 to reps - 1 do
    Obs.Hooks.set_metrics live_metrics;
    Obs.Hooks.set_tracer live_tracer;
    t_live.(i) <- timed ();
    Obs.Hooks.reset ();
    Obs.Hooks.set_logger silent_logger;
    t_a.(i) <- timed ();
    t_b.(i) <- timed ()
  done;
  Obs.Hooks.reset ();
  let noop = trimmed_mean t_a in
  let noop_check = trimmed_mean t_b in
  let live = trimmed_mean t_live in
  {
    oh_fixture = "parity-16384 kernel sweep";
    oh_reps = reps;
    oh_noop_s = noop;
    oh_noop_check_s = noop_check;
    oh_live_s = live;
    oh_noop_delta_percent = Float.abs (noop_check -. noop) /. noop *. 100.0;
    oh_live_overhead_percent = (live -. noop) /. noop *. 100.0;
  }

(* Shared-analysis reuse check (smoke only).  The module-level fixtures
   above were analyzed under the null sink, so this builds a *fresh* s27 —
   its memo cells are empty — and runs the full pipeline (engine creation
   with the sequential-fixpoint SP default, the kernel sweep, COP
   observability) under a live registry.  The counters then prove the
   sharing contract: the topological sort ran exactly once for the whole
   pipeline, every later consumer was a cache hit, and no engine fell back
   to a direct [Circuit.topological_order] recomputation. *)
let run_analysis_reuse_check () =
  print_endline "== Shared-analysis reuse on a fresh embedded s27 (live counters) ==";
  let live = Obs.Metrics.create () in
  Obs.Hooks.set_metrics live;
  Fun.protect ~finally:Obs.Hooks.reset (fun () ->
      let c = Circuit_gen.Embedded.s27 () in
      let engine = Epp.Epp_engine.create c in
      ignore (Epp.Epp_engine.analyze_all engine);
      ignore (Sigprob.Observability.compute c));
  let s = Obs.Metrics.snapshot live in
  let v name = Obs.Metrics.counter_value s name in
  let failed = ref false in
  let expect what ok =
    if ok then Fmt.pr "ok: %s@." what
    else begin
      Fmt.epr "FAIL: %s@." what;
      failed := true
    end
  in
  expect
    (Printf.sprintf "analysis.topo.computed = 1 (got %d)" (v "analysis.topo.computed"))
    (v "analysis.topo.computed" = 1);
  expect
    (Printf.sprintf "analysis.context.computed = 1 (got %d)" (v "analysis.context.computed"))
    (v "analysis.context.computed" = 1);
  expect
    (Printf.sprintf "analysis.cache.hit > 0 (got %d)" (v "analysis.cache.hit"))
    (v "analysis.cache.hit" > 0);
  expect
    (Printf.sprintf "analysis.topo.direct_calls = 0 (got %d)"
       (v "analysis.topo.direct_calls"))
    (v "analysis.topo.direct_calls" = 0);
  if !failed then exit 1;
  print_newline ()

(* In-process load run against the serd request engine (--service): the
   protocol, cache, and deadline paths without subprocess plumbing — the
   scripted end-to-end session lives in @service-smoke.  Measures the
   cache-hit request path (one cold miss, then repeats) and prints the
   latency summary the smoke writes to BENCH_service.json. *)
let run_service_load () =
  print_endline "== serd request engine: in-process load (cache-hit path) ==";
  let live = Obs.Metrics.create () in
  Obs.Hooks.set_metrics live;
  Fun.protect ~finally:Obs.Hooks.reset @@ fun () ->
  let server = Service.Server.create Service.Server.default_config in
  let request =
    Obs.Json.to_string
      (Obs.Json.Obj
         [
           ("op", Obs.Json.String "analyze");
           ( "circuit",
             Obs.Json.Obj
               [
                 ("format", Obs.Json.String "embedded");
                 ("source", Obs.Json.String "s27");
               ] );
         ])
  in
  let iterations = 200 in
  let load = Service.Load.create () in
  let t0 = Obs.Clock.monotonic_seconds () in
  for _ = 1 to iterations do
    let q0 = Obs.Clock.monotonic_seconds () in
    (match Service.Server.handle_line server request with
    | `Reply _ -> ()
    | `Shutdown _ -> assert false);
    Service.Load.record load (Obs.Clock.monotonic_seconds () -. q0)
  done;
  let wall = Obs.Clock.monotonic_seconds () -. t0 in
  let s = Obs.Metrics.snapshot live in
  let v name = Obs.Metrics.counter_value s name in
  let pct p = Service.Load.percentile load p *. 1000.0 in
  Report.Table.print
    ~align:Report.Table.[ Left; Right ]
    ~header:[ "measure"; "value" ]
    [
      [ "requests"; string_of_int (Service.Load.count load) ];
      [ "qps"; Printf.sprintf "%.0f" (float_of_int iterations /. wall) ];
      [ "p50 latency"; Printf.sprintf "%.3f ms" (pct 50.0) ];
      [ "p99 latency"; Printf.sprintf "%.3f ms" (pct 99.0) ];
      [
        "engine cache";
        Printf.sprintf "%d hit / %d miss"
          (v "analysis.cache.engine.hit")
          (v "analysis.cache.engine.miss");
      ];
      [ "topo computed"; string_of_int (v "analysis.topo.computed") ];
    ];
  if v "analysis.cache.engine.hit" < iterations - 1 then begin
    Fmt.epr "FAIL: repeat requests were not served from the engine cache@.";
    exit 1
  end;
  print_newline ()

(* Perf-trajectory baseline comparison (--baseline FILE).  Reads a
   previously committed BENCH_epp_kernel.json and flags any fixture whose
   regenerated speedup regressed more than 5% against the recorded one.
   Labels that don't appear in the baseline (e.g. smoke fixtures against a
   full-run baseline) are skipped with a note.  One re-measure before
   failing: a single sweep's timing carries machine-load noise that a
   5% guard would otherwise convert into flakes. *)
let baseline_speedups path =
  match Obs.Json.parse_file path with
  | Error msg ->
    Fmt.epr "FAIL: baseline %s does not parse: %s@." path msg;
    exit 1
  | Ok v ->
    let fixtures =
      Option.value ~default:[]
        (Option.bind (Obs.Json.member "fixtures" v) Obs.Json.to_list)
    in
    List.filter_map
      (fun f ->
        match
          ( Option.bind (Obs.Json.member "label" f) Obs.Json.to_string_value,
            Option.bind (Obs.Json.member "speedup" f) Obs.Json.to_number )
        with
        | Some label, Some speedup -> Some (label, speedup)
        | _ -> None)
      fixtures

let check_against_baseline ~fixtures ~rows path =
  let recorded = baseline_speedups path in
  let tolerance = 0.05 in
  let failed = ref false in
  List.iter2
    (fun f r ->
      match List.assoc_opt r.kr_label recorded with
      | None -> Fmt.pr "baseline: %s not in %s — skipped@." r.kr_label path
      | Some old ->
        let regression r = (old -. r.kr_speedup) /. old in
        let r =
          if regression r > tolerance then begin
            Fmt.pr "baseline: %s speedup %.1fx vs recorded %.1fx — re-measuring once@."
              r.kr_label r.kr_speedup old;
            run_kernel_fixture f
          end
          else r
        in
        if regression r > tolerance then begin
          Fmt.epr "FAIL: %s: speedup %.1fx regressed >%.0f%% vs recorded %.1fx@."
            r.kr_label r.kr_speedup (tolerance *. 100.0) old;
          failed := true
        end
        else
          Fmt.pr "baseline: %s speedup %.1fx vs recorded %.1fx — within %.0f%%@."
            r.kr_label r.kr_speedup old (tolerance *. 100.0))
    fixtures rows;
  if !failed then exit 1

let run_kernel_bench ?(json = false) ?(smoke = false) ?baseline () =
  print_endline
    "== EPP kernel / batch vs reference engine (analyze_all, single domain) ==";
  let fixtures = kernel_fixtures ~smoke in
  let rows = List.map run_kernel_fixture fixtures in
  Report.Table.print
    ~align:Report.Table.[ Left; Right; Right; Right; Right; Right; Right; Right ]
    ~header:
      [ "fixture"; "gates"; "reference"; "kernel"; "batch"; "kern spd";
        "batch spd"; "max |dP|" ]
    (List.map
       (fun r ->
         [ r.kr_label; string_of_int r.kr_gates;
           Printf.sprintf "%.3f s" r.kr_reference_s;
           Printf.sprintf "%.3f s" r.kr_kernel_s;
           Printf.sprintf "%.3f s" r.kr_batch_s;
           Printf.sprintf "%.1fx" r.kr_speedup;
           Printf.sprintf "%.1fx" (r.kr_reference_s /. r.kr_batch_s);
           Printf.sprintf "%.1e" r.kr_max_diff ])
       rows);
  List.iter
    (fun r ->
      let base = List.assoc 1 r.kr_batch_scaling in
      Fmt.pr "batch scaling %s:%s@." r.kr_label
        (String.concat ","
           (List.map
              (fun (d, t) -> Printf.sprintf " %dd %.3f s (%.1fx)" d t (base /. t))
              r.kr_batch_scaling)))
    rows;
  let failed = ref false in
  List.iter2
    (fun f r ->
      if r.kr_max_diff > 1e-12 then begin
        Fmt.epr "FAIL: %s: kernel diverged from reference (max diff %.3g > 1e-12)@."
          r.kr_label r.kr_max_diff;
        failed := true
      end;
      if not (r.kr_batch_bitwise && r.kr_batch_max_diff = 0.0) then begin
        Fmt.epr "FAIL: %s: batch diverged from the kernel (max diff %.3g, must be bitwise)@."
          r.kr_label r.kr_batch_max_diff;
        failed := true
      end;
      (match f.kf_min_speedup with
      | Some min when r.kr_speedup < min ->
        Fmt.epr "FAIL: %s: kernel speedup %.1fx below the %.0fx floor@." r.kr_label
          r.kr_speedup min;
        failed := true
      | Some _ | None -> ());
      match f.kf_min_batch_speedup with
      | Some min when r.kr_reference_s /. r.kr_batch_s < min ->
        Fmt.epr "FAIL: %s: batch speedup %.1fx below the %.0fx floor@." r.kr_label
          (r.kr_reference_s /. r.kr_batch_s)
          min;
        failed := true
      | Some _ | None -> ())
    fixtures rows;
  if !failed then exit 1;
  print_endline
    "kernel within 1e-12 and batch bit-identical on every fixture: PASS";
  Option.iter (check_against_baseline ~fixtures ~rows) baseline;
  let print_overhead oh =
    Fmt.pr
      "instrumentation overhead (%s, %d rounds): no-op sinks %.4f s vs %.4f s \
       (trimmed-mean delta %.2f%%); live sinks %.4f s (+%.2f%%)@."
      oh.oh_fixture oh.oh_reps oh.oh_noop_s oh.oh_noop_check_s
      oh.oh_noop_delta_percent oh.oh_live_s oh.oh_live_overhead_percent
  in
  let oh = measure_overhead () in
  print_overhead oh;
  (* One re-measure before failing: the delta bounds measurement noise, and
     a burst of machine load during a single pass can push it past the
     guard without any code change. *)
  let oh =
    if smoke && oh.oh_noop_delta_percent >= 2.0 then begin
      Fmt.pr "delta above the guard — re-measuring once@.";
      let oh = measure_overhead () in
      print_overhead oh;
      oh
    end
    else oh
  in
  if smoke && oh.oh_noop_delta_percent >= 2.0 then begin
    Fmt.epr "FAIL: no-op-sink kernel delta %.2f%% exceeds the 2%% guard@."
      oh.oh_noop_delta_percent;
    exit 1
  end;
  print_newline ();
  if json then begin
    let open Obs.Json in
    let fixture_row r =
      let sps t = float_of_int r.kr_nodes /. t in
      Obj
        [
          ("label", String r.kr_label);
          ("nodes", int r.kr_nodes);
          ("gates", int r.kr_gates);
          ("sites", int r.kr_nodes);
          ("reference_s", Number r.kr_reference_s);
          ("kernel_s", Number r.kr_kernel_s);
          ("reference_sites_per_sec", Number (sps r.kr_reference_s));
          ("kernel_sites_per_sec", Number (sps r.kr_kernel_s));
          ("speedup", Number r.kr_speedup);
          ("max_abs_diff", Number r.kr_max_diff);
          ( "batch",
            Obj
              [
                ("batch_s", Number r.kr_batch_s);
                ("batch_sites_per_sec", Number (sps r.kr_batch_s));
                ("speedup_vs_reference", Number (r.kr_reference_s /. r.kr_batch_s));
                ("speedup_vs_kernel", Number (r.kr_kernel_s /. r.kr_batch_s));
                ("max_abs_diff", Number r.kr_batch_max_diff);
                ("bitwise", Bool r.kr_batch_bitwise);
                ( "scaling",
                  List
                    (List.map
                       (fun (d, t) ->
                         Obj
                           [
                             ("domains", int d);
                             ("seconds", Number t);
                             ("sites_per_sec", Number (sps t));
                           ])
                       r.kr_batch_scaling) );
              ] );
          ("metrics", r.kr_metrics);
        ]
    in
    to_file ~pretty:true "BENCH_epp_kernel.json"
      (Obj
         [
           ("benchmark", String "epp_kernel_vs_reference");
           ("domains", int 1);
           ("fixtures", List (List.map fixture_row rows));
           ( "instrumentation_overhead",
             Obj
               [
                 ("fixture", String oh.oh_fixture);
                 ("reps", int oh.oh_reps);
                 ("noop_s", Number oh.oh_noop_s);
                 ("noop_check_s", Number oh.oh_noop_check_s);
                 ("live_s", Number oh.oh_live_s);
                 ("noop_delta_percent", Number oh.oh_noop_delta_percent);
                 ("live_overhead_percent", Number oh.oh_live_overhead_percent);
               ] );
         ]);
    print_endline "wrote BENCH_epp_kernel.json";
    print_newline ()
  end

(* --- design-choice ablations ------------------------------------------------
   Accuracy of each estimator against the BDD-exact ground truth on a
   mid-size circuit, quantifying what each design ingredient buys:
   - the paper's polarity-tracked EPP (the contribution),
   - the polarity-blind three-state rules (drop the key idea),
   - COP observability (drop per-site path construction as well),
   - random simulation at two budgets (the baseline at different costs). *)
let run_ablation_on ~label c =
  Fmt.pr "-- %s --@." label;
  let sp = sp_of c in
  let cb = Circuit_bdd.build ~node_limit:8_000_000 c in
  let input_sp v = if Netlist.Circuit.is_ff c v then sp.Sigprob.Sp.values.(v) else 0.5 in
  let sites =
    List.init (Netlist.Circuit.node_count c) Fun.id
    |> List.filter (Netlist.Circuit.is_gate c)
  in
  let exact =
    List.map
      (fun s ->
        (Circuit_bdd.epp_exact ~input_sp ~node_limit:8_000_000 cb s).Circuit_bdd.p_sensitized)
      sites
  in
  let mae estimates =
    List.fold_left2 (fun acc e x -> acc +. Float.abs (e -. x)) 0.0 estimates exact
    /. float_of_int (List.length sites)
  in
  let timed name f =
    let estimates, t = Report.Timer.time f in
    (name, mae estimates, t)
  in
  let polarity = Epp.Epp_engine.create ~sp c in
  let naive = Epp.Epp_engine.create ~mode:Epp.Epp_engine.Naive ~sp c in
  let sim_at vectors =
    let ctx = Fault_sim.Epp_sim.create ~config:{ Fault_sim.Epp_sim.vectors; input_sp } c in
    let rng = Rng.create ~seed:77 in
    List.map (fun s -> (Fault_sim.Epp_sim.estimate_site ctx ~rng s).Fault_sim.Epp_sim.p_sensitized) sites
  in
  let rows =
    [
      timed "EPP (paper: polarity + cone)" (fun () ->
          List.map (fun s -> (Epp.Epp_engine.analyze_site polarity s).Epp.Epp_engine.p_sensitized) sites);
      timed "EPP, polarity-blind rules" (fun () ->
          List.map (fun s -> (Epp.Epp_engine.analyze_site naive s).Epp.Epp_engine.p_sensitized) sites);
      timed "COP observability (1 pass)" (fun () ->
          let ob = Sigprob.Observability.compute ~sp c in
          List.map (fun s -> Sigprob.Observability.get ob s) sites);
      timed "simulation, 1k vectors/site" (fun () -> sim_at 1_000);
      timed "simulation, 16k vectors/site" (fun () -> sim_at 16_384);
    ]
  in
  Report.Table.print
    ~align:Report.Table.[ Left; Right; Right ]
    ~header:[ "estimator"; "MAE vs exact"; "time (all sites)" ]
    (List.map
       (fun (name, mae, t) ->
         [ name; Printf.sprintf "%.4f" mae; Printf.sprintf "%.1f ms" (t *. 1000.0) ])
       rows);
  print_newline ()

let run_ablation () =
  print_endline "== Ablation: accuracy vs the BDD-exact oracle (all gate sites) ==";
  run_ablation_on ~label:"s344 profile (default mix: 6% XOR)"
    (Circuit_gen.Random_dag.generate ~seed:4 Circuit_gen.Profiles.s344);
  (* Parity-style logic is where the polarity split earns its keep: same
     size, but half the multi-input gates are XOR/XNOR. *)
  let xor_rich =
    { Circuit_gen.Random_dag.default_config with Circuit_gen.Random_dag.xor_fraction = 0.5 }
  in
  run_ablation_on ~label:"s298 profile, XOR-rich variant (50% XOR)"
    (Circuit_gen.Random_dag.generate ~config:xor_rich ~seed:4 Circuit_gen.Profiles.s298)

(* Usage: dune exec bench/main.exe --
     (no flag)       full run: micro + fig1 + kernel + ablations + Table 2
     --quick         3-circuit Table-2 smoke version
     --micro-only    Bechamel microbenchmarks only
     --table-only    Table-2 harness only
     --kernel-only   kernel-vs-reference sweep only (>= 5k-gate fixtures)
     --service       in-process load run against the serd request engine
     --json          with the kernel bench: also write BENCH_epp_kernel.json
     --baseline F    with the kernel bench: fail if any fixture's speedup
                     regressed >5% against the recorded BENCH_epp_kernel.json
     --smoke         fast CI check: kernel equivalence on a small profile plus
                     the shared-analysis reuse counters on the embedded s27
                     (also available as `dune build @bench-smoke`) *)
let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let micro_only = List.mem "--micro-only" args in
  let table_only = List.mem "--table-only" args in
  let kernel_only = List.mem "--kernel-only" args in
  let json = List.mem "--json" args in
  let rec baseline_of = function
    | "--baseline" :: file :: _ -> Some file
    | _ :: rest -> baseline_of rest
    | [] -> None
  in
  let baseline = baseline_of args in
  if List.mem "--smoke" args then begin
    run_kernel_bench ~smoke:true ?baseline ();
    run_analysis_reuse_check ()
  end
  else if List.mem "--service" args then run_service_load ()
  else if kernel_only then run_kernel_bench ~json ?baseline ()
  else begin
    if not table_only then run_micro ();
    if not micro_only then begin
      run_fig1 ();
      run_kernel_bench ~json ?baseline ();
      run_ablation ();
      run_table2 ~quick ()
    end
  end
