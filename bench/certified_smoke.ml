(* Certified-tier smoke run: every sampled site of a dense s9234-profile
   fixture (the regime that kills monolithic BDDs) must get a certified
   verdict inside a 60s deadline, with at least one budget-trip fallback
   actually exercised and zero hard findings against the analytical engine
   (analytical inside [lo - slack, hi + slack]).  The exact verdicts
   recalibrate the analytical envelope on real-circuit-scale structures:
   BENCH_certified.json records the envelope mean/max next to the
   bdd_exact/interval/mc split and the p95 certify time, and is re-parsed
   with the strict Obs.Json parser after writing.
   `dune build @certified-smoke`. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("certified_smoke: " ^ s); exit 1) fmt

let () =
  let t0 = Unix.gettimeofday () in
  let c = Circuit_gen.Random_dag.generate ~seed:1 Circuit_gen.Profiles.s9234 in
  let n = Netlist.Circuit.node_count c in
  (* Deterministic stride sample of ~24 gate sites across the whole DAG. *)
  let gates =
    List.filter (Netlist.Circuit.is_gate c) (List.init n Fun.id) |> Array.of_list
  in
  let target = 24 in
  let stride = max 1 (Array.length gates / target) in
  let sites =
    Array.init (min target (Array.length gates)) (fun i -> gates.(i * stride))
  in
  (* 10k nodes trips in under a second per site on this fixture; the dense
     regime is precisely the one where no budget admits an exact cone
     (every site's relevant cone is the whole circuit, support ~242), so
     the smoke exercises the trip -> interval -> MC ladder, not the exact
     rung. *)
  let config =
    {
      Conformance.Certified.default_config with
      node_budget = 10_000;
      target_width = 0.1;
      mc_base_vectors = 2048;
      mc_max_vectors = 8192;
    }
  in
  let stats = Conformance.Certified.Stats.create () in
  let deadline = Obs.Deadline.after ~seconds:60.0 in
  let verdicts =
    Conformance.Certified.certify_sites ~config ~deadline ~stats c sites
  in
  if Array.length verdicts <> Array.length sites then
    fail "%d verdicts for %d sites" (Array.length verdicts) (Array.length sites);

  (* Analytical engine over the same sites: inside the slack-widened
     certified interval or it is a hard finding with the certificate. *)
  let sp = Sigprob.Sp_topological.compute c in
  let engine = Epp.Epp_engine.create ~sp c in
  let slack = Conformance.Oracle.default_envelope in
  let hard = ref 0 in
  let env_sum = ref 0.0 and env_max = ref 0.0 in
  let width_sum = ref 0.0 in
  Array.iter
    (fun (v : Conformance.Certified.verdict) ->
      let analytical =
        (Epp.Epp_engine.analyze_site engine v.site).Epp.Epp_engine.p_sensitized
      in
      if analytical < v.lo -. slack || analytical > v.hi +. slack then begin
        incr hard;
        Printf.eprintf "certified_smoke: HARD site %s: analytical %.4f vs %s\n"
          (Netlist.Circuit.node_name c v.site)
          analytical
          (Fmt.str "%a" Conformance.Certified.pp_verdict v)
      end;
      (* The recalibrated envelope at real-circuit scale: how far the
         analytical engine strays beyond the certified bounds (zero when
         inside).  On circuits no monolithic BDD can finish, this replaces
         the small-circuit exact-vs-analytical deviation as the number the
         paper's ~6% claim is judged against. *)
      let d = Float.max 0.0 (Float.max (v.lo -. analytical) (analytical -. v.hi)) in
      env_sum := !env_sum +. d;
      if d > !env_max then env_max := d;
      width_sum := !width_sum +. (v.hi -. v.lo))
    verdicts;
  let elapsed = Unix.gettimeofday () -. t0 in

  let module S = Conformance.Certified.Stats in
  if S.total stats <> Array.length sites then
    fail "stats count %d <> %d sites" (S.total stats) (Array.length sites);
  if S.budget_trips stats < 1 then
    fail "no budget trip: the fixture never exercised the fallback ladder";
  if S.mc_certified stats < 1 then
    fail "no MC-certified verdict: the Wilson rung never tightened an interval";
  if !hard > 0 then fail "%d hard findings" !hard;
  if elapsed > 60.0 then fail "took %.1fs (deadline 60s)" elapsed;
  let sites_f = float_of_int (Array.length sites) in
  let envelope_mean = !env_sum /. sites_f in
  let mean_width = !width_sum /. sites_f in

  let path = "BENCH_certified.json" in
  let open Obs.Json in
  to_file ~pretty:true path
    (Obj
       [
         ("circuit", String (Netlist.Circuit.name c));
         ("nodes", int n);
         ("sites", int (Array.length sites));
         ("bdd_exact", int (S.bdd_exact stats));
         ("interval", int (S.interval stats));
         ("mc_certified", int (S.mc_certified stats));
         ("budget_trips", int (S.budget_trips stats));
         ("mc_rejected", int (S.mc_rejected stats));
         ("p95_certify_seconds", Number (S.p95_seconds stats));
         ("envelope_mean", Number envelope_mean);
         ("envelope_max", Number !env_max);
         ("mean_interval_width", Number mean_width);
         ("hard_findings", int !hard);
         ("elapsed_seconds", Number elapsed);
       ]);

  (* Round-trip: the artifact must re-parse and carry consistent numbers. *)
  let json =
    match parse_file path with
    | Ok v -> v
    | Error e -> fail "%s does not parse: %s" path e
  in
  let number key =
    match Option.bind (member key json) to_number with
    | Some x -> x
    | None -> fail "missing numeric field %S" key
  in
  let split =
    int_of_float (number "bdd_exact")
    + int_of_float (number "interval")
    + int_of_float (number "mc_certified")
  in
  if split <> Array.length sites then
    fail "verdict split %d does not cover %d sites" split (Array.length sites);
  if number "p95_certify_seconds" < 0.0 then fail "negative p95";
  Printf.printf
    "certified smoke OK: %d sites on %s (%d nodes) in %.1fs — %d bdd-exact, %d \
     interval, %d mc, %d budget trips; envelope mean %.4f max %.4f; mean width \
     %.4f; p95 %.3fs\n"
    (Array.length sites) (Netlist.Circuit.name c) n elapsed (S.bdd_exact stats)
    (S.interval stats) (S.mc_certified stats) (S.budget_trips stats) envelope_mean
    !env_max mean_width (S.p95_seconds stats)
