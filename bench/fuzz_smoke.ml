(* Validator for the @fuzz-smoke artifact: re-parse BENCH_fuzz.json (with
   the strict Obs.Json parser — also a round-trip check on the emitter) and
   assert the conformance acceptance numbers: at least 200 cases, at least
   4 comparable oracle pairs, and zero non-statistical disagreements. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("fuzz_smoke: " ^ s); exit 1) fmt

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_fuzz.json" in
  let json =
    match Obs.Json.parse_file path with
    | Ok v -> v
    | Error e -> fail "%s does not parse: %s" path e
  in
  let number key =
    match Option.bind (Obs.Json.member key json) Obs.Json.to_number with
    | Some n -> n
    | None -> fail "missing numeric field %S" key
  in
  let cases = int_of_float (number "cases") in
  if cases < 200 then fail "only %d cases (need >= 200)" cases;
  let pairs =
    match Obs.Json.member "pairs" json with
    | Some (Obs.Json.Obj l) -> List.length l
    | _ -> fail "missing pairs object"
  in
  if pairs < 4 then fail "only %d oracle pairs (need >= 4)" pairs;
  (match Obs.Json.member "hard_findings" json with
  | Some (Obs.Json.List []) -> ()
  | Some (Obs.Json.List l) -> fail "%d hard findings" (List.length l)
  | _ -> fail "missing hard_findings list");
  if number "comparisons" <= 0.0 then fail "no comparisons ran";
  if number "invariant_checks" <= 0.0 then fail "no metamorphic invariant checks ran";
  let envelope_mean = number "envelope_mean" in
  if envelope_mean < 0.0 || envelope_mean > 0.10 then
    fail "envelope mean %.4f outside [0, 0.10] (paper claims ~6%% average)" envelope_mean;
  Printf.printf
    "fuzz smoke OK: %d cases, %d oracle pairs, %d comparisons, envelope mean %.4f\n"
    cases pairs
    (int_of_float (number "comparisons"))
    envelope_mean
