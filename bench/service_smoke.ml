(* service_smoke: CI gate for the serd daemon (dune build @service-smoke).

   Drives a real serd subprocess over its stdio transport through a
   scripted mixed session and asserts the robustness contract end to end:

   - one process survives, in order: malformed JSON, over-deep nesting, an
     over-long line, an invalid netlist, a whole-circuit analyze (miss),
     the same analyze again (cache hit + checkpoint resume), a
     zero-budget analyze (partial, not a crash), an inline .bench
     payload, and an overload burst behind a sleep (shed, not buffered);
   - repeat queries are served from the warmed-engine cache: the final
     metrics dump shows analysis.topo.computed stuck at one per distinct
     circuit while the cache-hit counter grows with every repeat;
   - a second daemon kill -9'd mid-session leaves a checkpoint a third
     daemon resumes (stats.resumed = stats.total on the repeat query).

   A fourth daemon runs the observability acceptance session: with fault
   injection, a dump dir, a Prometheus file, and a trace file enabled, a
   slow request, an injected-quarantine request, and a zero-budget request
   each get a distinct server-minted request_id; the live stats op reports
   uptime / queue depth / cache residency, the dump op returns flight-
   recorder events correlated to all three ids, the trace written at
   shutdown holds one serd.request span per id (supervisor spans joined by
   the same request_id arg), the Prometheus exposition lints clean, and
   both incident dumps land in the dump dir named
   <reason>-<request_id>.json.  A fifth daemon answers the stats op over a
   Unix socket.

   A latency loop over the cache-hit path feeds BENCH_service.json
   (p50/p99/mean latency, qps, cache hit rate, shed and partial counts,
   the observability session's figures), which is re-parsed after
   writing; the response transcript is kept as newline-delimited JSON in
   BENCH_service_session.jsonl and re-parsed with the same framing
   helpers serd itself uses.  Any failed check exits non-zero and fails
   the alias. *)

module Json = Obs.Json

let failures = ref 0
let checks = ref []

let check what ok =
  checks := (what, ok) :: !checks;
  if ok then Fmt.pr "ok: %s@." what
  else begin
    incr failures;
    Fmt.pr "FAIL: %s@." what
  end

(* --- JSON plumbing -------------------------------------------------------- *)

let jstr key v = Option.bind (Json.member key v) Json.to_string_value
let jnum key v = Option.bind (Json.member key v) Json.to_number
let status v = jstr "status" v

let error_code v =
  Option.bind (Json.member "error" v) (fun e -> jstr "code" e)

let stat key v =
  Option.bind (Json.member "stats" v) (fun s -> jnum key s)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1))
  in
  at 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let metric name v =
  Option.bind (Json.member "metrics" v) @@ fun m ->
  Option.bind (Json.member "counters" m) @@ fun c ->
  match Json.member name c with
  | Some j -> Json.to_number j
  | None -> Some 0.0 (* an untouched counter is absent from the snapshot *)

(* --- daemon subprocess ---------------------------------------------------- *)

type daemon = {
  pid : int;
  ic : in_channel;
  oc : out_channel;
  transcript : Buffer.t option;
}

let spawn ?transcript exe args =
  let to_d_read, to_d_write = Unix.pipe ~cloexec:false () in
  let from_d_read, from_d_write = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process exe
      (Array.of_list (exe :: args))
      to_d_read from_d_write Unix.stderr
  in
  Unix.close to_d_read;
  Unix.close from_d_write;
  {
    pid;
    ic = Unix.in_channel_of_descr from_d_read;
    oc = Unix.out_channel_of_descr to_d_write;
    transcript;
  }

let send d v = Json.emit_line d.oc v

let send_raw d line =
  output_string d.oc line;
  output_char d.oc '\n';
  flush d.oc

let recv d =
  let line = input_line d.ic in
  (match d.transcript with
  | Some b ->
    Buffer.add_string b line;
    Buffer.add_char b '\n'
  | None -> ());
  match Json.parse line with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "unparseable response %S: %s" line msg)

let rpc d v =
  send d v;
  recv d

let wait d =
  close_out_noerr d.oc;
  close_in_noerr d.ic;
  snd (Unix.waitpid [] d.pid)

(* --- request builders ----------------------------------------------------- *)

let obj = List.map (fun (k, v) -> (k, v))

let analyze ?id ?sites ?budget_ms ?top_k ?inject ~format ~source () =
  let base =
    [
      ("op", Json.String "analyze");
      ( "circuit",
        Json.Obj
          [ ("format", Json.String format); ("source", Json.String source) ] );
    ]
  in
  let opt k f = function
    | None -> []
    | Some v -> [ (k, f v) ]
  in
  Json.Obj
    (obj
       (opt "id" Json.int id
       @ base
       @ opt "sites" (fun l -> Json.List (List.map Json.int l)) sites
       @ opt "budget_ms" (fun b -> Json.Number b) budget_ms
       @ opt "top_k" Json.int top_k
       @ opt "inject_faults" (fun l -> Json.List (List.map Json.int l)) inject))

let op ?id name fields =
  let id_f =
    match id with
    | None -> []
    | Some i -> [ ("id", Json.int i) ]
  in
  Json.Obj (id_f @ (("op", Json.String name) :: fields))

let tiny_bench =
  "INPUT(a)\nINPUT(b)\nINPUT(c)\nx = AND(a, b)\ny = OR(x, c)\nOUTPUT(y)\n"

(* --- the scripted session ------------------------------------------------- *)

let rm_rf_checkpoints dir =
  if Sys.file_exists dir then
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".ck" then Sys.remove (Filename.concat dir f))
      (Sys.readdir dir)

let () =
  (* A wedged daemon must fail CI, not hang it. *)
  ignore (Unix.alarm 240);
  let serd =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else failwith "usage: service_smoke SERD_EXE"
  in
  let ck_a = "service_smoke_ck_a" and ck_b = "service_smoke_ck_b" in
  rm_rf_checkpoints ck_a;
  rm_rf_checkpoints ck_b;
  let transcript = Buffer.create 4096 in
  let burst = 12 and high_water = 4 in
  let d =
    spawn ~transcript serd
      [
        "--checkpoint-dir"; ck_a;
        "--queue-high-water"; string_of_int high_water;
        "--domains"; "1";
        "--max-request-bytes"; "2048";
      ]
  in

  (* 1. ping *)
  let r = rpc d (op ~id:1 "ping" []) in
  check "ping answers ok" (status r = Some "ok");
  check "ping echoes id" (jnum "id" r = Some 1.0);

  (* 2. malformed JSON -> typed parse error, daemon survives *)
  send_raw d "this is not json";
  let r = recv d in
  check "malformed JSON answers parse_error"
    (status r = Some "error" && error_code r = Some "parse_error");

  (* 3. over-deep nesting -> request_too_large *)
  send_raw d (String.make 80 '[' ^ "1" ^ String.make 80 ']');
  let r = recv d in
  check "over-deep nesting answers request_too_large"
    (status r = Some "error" && error_code r = Some "request_too_large");

  (* 4. over-long line -> request_too_large (streamed, never buffered) *)
  send_raw d (String.make 4000 ' ');
  let r = recv d in
  check "over-long line answers request_too_large"
    (status r = Some "error" && error_code r = Some "request_too_large");

  (* 5. invalid netlist -> typed error, daemon survives *)
  let r =
    rpc d (analyze ~id:5 ~format:"bench" ~source:"INPUT(broken" ())
  in
  check "invalid netlist answers invalid_netlist"
    (status r = Some "error" && error_code r = Some "invalid_netlist");

  (* 6. whole-circuit analyze: cold -> miss, complete, nothing resumed *)
  let r = rpc d (analyze ~id:6 ~format:"embedded" ~source:"s27" ~top_k:3 ()) in
  let total =
    match stat "total" r with
    | Some t -> int_of_float t
    | None -> 0
  in
  check "cold analyze completes" (status r = Some "ok");
  check "cold analyze is a cache miss" (jstr "cache" r = Some "miss");
  check "cold analyze covers the circuit" (total > 0);
  check "cold analyze resumed nothing" (stat "resumed" r = Some 0.0);

  (* 7. repeat analyze: warmed engine + checkpoint replay *)
  let r = rpc d (analyze ~id:7 ~format:"embedded" ~source:"s27" ()) in
  check "repeat analyze hits the engine cache" (jstr "cache" r = Some "hit");
  check "repeat analyze resumes every site from the checkpoint"
    (stat "resumed" r = Some (float_of_int total) && status r = Some "ok");

  (* 8. zero budget on an explicit site list: partial, not a crash *)
  let sites = List.init total Fun.id in
  let r =
    rpc d
      (analyze ~id:8 ~format:"embedded" ~source:"s27" ~sites ~budget_ms:0.0 ())
  in
  check "zero budget answers partial" (status r = Some "partial");
  check "zero budget reports the uncovered remainder"
    (Option.bind (Json.member "deadline" r) (jnum "remaining")
    = Some (float_of_int total));

  (* 9. inline .bench payload parses and analyzes *)
  let r = rpc d (analyze ~id:9 ~format:"bench" ~source:tiny_bench ()) in
  check "inline .bench analyze completes" (status r = Some "ok");

  (* 10. overload: a burst behind a sleep is shed, not buffered.  Shed
     responses are emitted the moment the queue overflows — i.e. while the
     sleep is still being served — so responses are classified by content,
     not arrival order. *)
  send d (op ~id:100 "sleep" [ ("seconds", Json.Number 0.3) ]);
  for i = 1 to burst do
    send d (op ~id:(100 + i) "ping" [])
  done;
  let slept = ref 0 and pongs = ref 0 and shed = ref 0 in
  for _ = 0 to burst do
    let r = recv d in
    match (status r, error_code r) with
    | Some "ok", _ ->
      if Json.member "slept" r <> None then incr slept else incr pongs
    | Some "error", Some "overloaded" -> incr shed
    | _ -> ()
  done;
  check "sleep completes" (!slept = 1);
  check "every burst request is answered" (!pongs + !shed = burst);
  check "some of the burst is served" (!pongs >= 1);
  check "the overflow is shed as overloaded"
    (!shed >= burst - (2 * high_water));

  (* 11. latency loop on the hot path *)
  let load = Service.Load.create () in
  let iterations = 50 in
  let t0 = Obs.Clock.monotonic_seconds () in
  for i = 1 to iterations do
    let q0 = Obs.Clock.monotonic_seconds () in
    let r = rpc d (analyze ~id:(1000 + i) ~format:"embedded" ~source:"s27" ()) in
    Service.Load.record load (Obs.Clock.monotonic_seconds () -. q0);
    if status r <> Some "ok" then
      check (Printf.sprintf "latency iteration %d" i) false
  done;
  let wall = Obs.Clock.monotonic_seconds () -. t0 in

  (* 12. the cache served the repeats: topo count stuck at one per circuit *)
  let m = rpc d (op "metrics" []) in
  let topo = metric "analysis.topo.computed" m in
  let hits = metric "analysis.cache.engine.hit" m in
  let misses = metric "analysis.cache.engine.miss" m in
  check "one topological sort per distinct circuit, despite the repeats"
    (topo = Some 2.0);
  check "the repeats were engine-cache hits"
    (match hits with
    | Some h -> h >= float_of_int iterations
    | None -> false);
  check "shed requests are metered"
    (match metric "serd.shed" m with
    | Some s -> int_of_float s = !shed
    | None -> false);
  check "deadline partials are metered"
    (match metric "serd.deadline_partial" m with
    | Some p -> p >= 1.0
    | None -> false);

  (* 13. clean shutdown *)
  let r = rpc d (op ~id:99 "shutdown" []) in
  check "shutdown is acknowledged" (status r = Some "ok");
  check "daemon exits cleanly on shutdown" (wait d = Unix.WEXITED 0);

  (* 14. kill -9 mid-session, then a fresh daemon resumes the checkpoint *)
  let d1 = spawn serd [ "--checkpoint-dir"; ck_b; "--domains"; "1" ] in
  let r = rpc d1 (analyze ~id:1 ~format:"embedded" ~source:"s27" ()) in
  check "victim daemon analyzes before the kill" (status r = Some "ok");
  Unix.kill d1.pid Sys.sigkill;
  check "kill -9 takes the victim down"
    (wait d1 = Unix.WSIGNALED Sys.sigkill);
  check "the checkpoint survived the kill"
    (Array.exists
       (fun f -> Filename.check_suffix f ".ck")
       (Sys.readdir ck_b));
  let d2 = spawn serd [ "--checkpoint-dir"; ck_b; "--domains"; "1" ] in
  let r = rpc d2 (analyze ~id:2 ~format:"embedded" ~source:"s27" ()) in
  check "restarted daemon serves the repeat query"
    (status r = Some "ok");
  check "restarted daemon resumes every site from the checkpoint"
    (stat "resumed" r = Some (float_of_int total)
    && stat "total" r = Some (float_of_int total));
  ignore (rpc d2 (op "shutdown" []));
  check "restarted daemon exits cleanly" (wait d2 = Unix.WEXITED 0);

  (* 15. observability session: every figure an operator relies on, end to
     end in one daemon — correlation ids on the wire, live stats, the
     flight-recorder dump, incident files, the trace, and Prometheus. *)
  let dump_dir = "service_smoke_dumps" in
  let prom_path = "service_smoke_prom.txt" in
  let trace_path = "service_smoke_trace.json" in
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ prom_path; trace_path ];
  if Sys.file_exists dump_dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dump_dir f))
      (Sys.readdir dump_dir);
  let d3 =
    spawn serd
      [
        "--domains"; "1";
        "--allow-fault-injection";
        "--dump-dir"; dump_dir;
        "--prom-file"; prom_path;
        "--prom-interval-ms"; "100";
        "--trace"; trace_path;
      ]
  in
  let rid r = jstr "request_id" r in
  let r_slow = rpc d3 (op ~id:1 "sleep" [ ("seconds", Json.Number 0.15) ]) in
  check "slow request answers ok with a request_id"
    (status r_slow = Some "ok" && rid r_slow <> None);
  let r_q =
    rpc d3
      (analyze ~id:2 ~format:"embedded" ~source:"s27" ~sites:[ 0; 1; 2 ]
         ~inject:[ 0 ] ())
  in
  check "injected request quarantines exactly the injected site"
    (status r_q = Some "ok" && stat "quarantined" r_q = Some 1.0);
  let r_d =
    rpc d3 (analyze ~id:3 ~format:"embedded" ~source:"s27" ~budget_ms:0.0 ())
  in
  check "zero-budget request answers partial" (status r_d = Some "partial");
  let rid_slow = Option.value ~default:"?" (rid r_slow) in
  let rid_q = Option.value ~default:"?" (rid r_q) in
  let rid_d = Option.value ~default:"?" (rid r_d) in
  check "the three request ids are distinct"
    (rid_slow <> rid_q && rid_q <> rid_d && rid_slow <> rid_d);

  let s = rpc d3 (op ~id:4 "stats" []) in
  check "stats answers ok with its own request_id"
    (status s = Some "ok" && rid s <> None);
  check "stats reports a nonnegative uptime"
    (match jnum "uptime_seconds" s with
    | Some u -> u >= 0.0
    | None -> false);
  check "stats reports queue depth and served requests"
    (jnum "queue_depth" s <> None
    &&
    match jnum "requests" s with
    | Some n -> n >= 4.0
    | None -> false);
  check "stats meters the deadline partial" (jnum "deadline_partial" s = Some 1.0);
  check "stats reports a warmed engine resident"
    (Option.bind (Json.member "engine_cache" s) (jnum "resident") = Some 1.0);
  check "stats reports a populated recorder ring"
    (Option.bind (Json.member "recorder" s) (jnum "capacity") = Some 512.0
    &&
    match Option.bind (Json.member "recorder" s) (jnum "recorded") with
    | Some n -> n > 0.0
    | None -> false);

  let dmp = rpc d3 (op ~id:5 "dump" []) in
  let dump_events =
    Option.value ~default:[]
      (Option.bind (Json.member "recorder" dmp) @@ fun rec_ ->
       Option.bind (Json.member "events" rec_) Json.to_list)
  in
  let has_event ~name ~rid =
    List.exists
      (fun e -> jstr "event" e = Some name && jstr "request_id" e = Some rid)
      dump_events
  in
  check "dump correlates the quarantine to its request id"
    (has_event ~name:"supervisor.quarantine" ~rid:rid_q);
  check "dump correlates the deadline expiry to its request id"
    (has_event ~name:"supervisor.deadline_expired" ~rid:rid_d);
  check "dump correlates the slow request's completion log"
    (has_event ~name:"serd.request" ~rid:rid_slow);

  let r = rpc d3 (op ~id:9 "shutdown" []) in
  check "observability daemon acknowledges shutdown with a request_id"
    (status r = Some "ok" && rid r <> None);
  check "observability daemon exits cleanly" (wait d3 = Unix.WEXITED 0);

  (* The daemon wrote the trace and the final Prometheus exposition on the
     way out; the incident dumps landed as the requests completed. *)
  let tevents =
    match Json.parse_file trace_path with
    | Error msg ->
      check (Printf.sprintf "trace file re-parses (%s)" msg) false;
      []
    | Ok trace ->
      Option.value ~default:[]
        (Option.bind (Json.member "traceEvents" trace) Json.to_list)
  in
  let span_with ~name ~rid =
    List.exists
      (fun e ->
        jstr "ph" e = Some "B"
        && jstr "name" e = Some name
        && Option.bind (Json.member "args" e) (jstr "request_id") = Some rid)
      tevents
  in
  check "trace has one serd.request span per request id"
    (List.for_all
       (fun r -> span_with ~name:"serd.request" ~rid:r)
       [ rid_slow; rid_q; rid_d ]);
  check "supervisor spans join the trace through the request id"
    (span_with ~name:"supervisor.sweep" ~rid:rid_q
    && span_with ~name:"supervisor.sweep" ~rid:rid_d);
  let prom = read_file prom_path in
  let prom_ok = Obs.Prom.lint prom = Ok () in
  check "prometheus exposition lints clean" prom_ok;
  check "prometheus exposition carries the serd counters"
    (contains prom "serd_requests");
  let dump_file reason r =
    Filename.concat dump_dir (Printf.sprintf "%s-%s.json" reason r)
  in
  check "quarantine incident dumped under its request id"
    (Sys.file_exists (dump_file "quarantine" rid_q)
    && Result.is_ok (Json.parse_file (dump_file "quarantine" rid_q)));
  check "deadline incident dumped under its request id"
    (Sys.file_exists (dump_file "deadline" rid_d)
    && Result.is_ok (Json.parse_file (dump_file "deadline" rid_d)));

  (* 16. the stats op answers the same over a Unix socket *)
  let sock_path = "service_smoke.sock" in
  (try Sys.remove sock_path with Sys_error _ -> ());
  let d4 = spawn serd [ "--socket"; sock_path; "--domains"; "1" ] in
  let rec wait_for_socket n =
    if not (Sys.file_exists sock_path) then
      if n = 0 then failwith "socket never appeared"
      else begin
        Unix.sleepf 0.05;
        wait_for_socket (n - 1)
      end
  in
  wait_for_socket 100;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_UNIX sock_path);
  let sic = Unix.in_channel_of_descr sock in
  let soc = Unix.out_channel_of_descr sock in
  let sock_rpc v =
    Json.emit_line soc v;
    match Json.parse (input_line sic) with
    | Ok r -> r
    | Error msg -> failwith (Printf.sprintf "unparseable socket reply: %s" msg)
  in
  let r = sock_rpc (op ~id:1 "stats" []) in
  check "socket stats round-trips with live figures"
    (status r = Some "ok"
    && jnum "uptime_seconds" r <> None
    && rid r <> None);
  let r = sock_rpc (op ~id:2 "shutdown" []) in
  check "socket shutdown is acknowledged" (status r = Some "ok");
  (try Unix.close sock with Unix.Unix_error _ -> ());
  check "socket daemon exits cleanly" (wait d4 = Unix.WEXITED 0);

  (* --- artifacts ---------------------------------------------------------- *)

  let session_path = "BENCH_service_session.jsonl" in
  let oc = open_out session_path in
  output_string oc (Buffer.contents transcript);
  close_out oc;
  let frames = Json.parse_lines (Buffer.contents transcript) in
  check "every transcript frame re-parses"
    (frames <> [] && List.for_all Result.is_ok frames);

  let cache_hit_rate =
    match (hits, misses) with
    | Some h, Some m when h +. m > 0.0 -> h /. (h +. m)
    | _ -> 0.0
  in
  let artifact_path = "BENCH_service.json" in
  let artifact =
    Service.Load.summary_json load ~wall_seconds:wall
      ~extra:
        [
          ("benchmark", Json.String "service");
          ( "cache",
            Json.Obj
              [
                ("hit", Json.Number (Option.value hits ~default:0.0));
                ("miss", Json.Number (Option.value misses ~default:0.0));
                ("hit_rate", Json.Number cache_hit_rate);
              ] );
          ("shed", Json.int !shed);
          ( "observability",
            Json.Obj
              [
                ( "request_ids",
                  Json.Obj
                    [
                      ("slow", Json.String rid_slow);
                      ("quarantine", Json.String rid_q);
                      ("deadline", Json.String rid_d);
                    ] );
                ("recorder_events", Json.int (List.length dump_events));
                ("trace_events", Json.int (List.length tevents));
                ("prom_lint_ok", Json.Bool prom_ok);
              ] );
          ( "checks",
            Json.List
              (List.rev_map
                 (fun (what, ok) ->
                   Json.Obj
                     [ ("name", Json.String what); ("ok", Json.Bool ok) ])
                 !checks) );
        ]
  in
  Json.to_file ~pretty:true artifact_path artifact;
  (match Json.parse_file artifact_path with
  | Error msg -> check (Printf.sprintf "artifact re-parses (%s)" msg) false
  | Ok v ->
    check "artifact re-parses with the latency summary"
      (jnum "qps" v <> None
      && Option.bind (Json.member "latency_ms" v) (jnum "p50") <> None
      && Option.bind (Json.member "latency_ms" v) (jnum "p99") <> None));
  Fmt.pr "wrote %s and %s@." artifact_path session_path;

  if !failures > 0 then begin
    Fmt.pr "@.%d service smoke check(s) failed@." !failures;
    exit 1
  end
  else Fmt.pr "@.service smoke: all %d checks passed@." (List.length !checks)
