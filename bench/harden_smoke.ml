(* harden_smoke: CI gate for incremental EPP + ser_harden
   (dune build @harden-smoke).

   Three legs:

   + ser_harden --strategy derate on the embedded s27: the SER curve must
     be non-empty and monotone non-increasing (derating is monotone by
     construction — a rising step means the greedy loop or the r_seu_scale
     seam broke);
   + ser_harden --strategy tmr on a generated dense fixture of five
     DISJOINT dense blocks: every step must run through the patched
     (not rebuilt) analysis path, re-sweep < 25% of sites, and splice the
     rest from the previous step — checked both in the per-step curve and
     in the live metrics snapshot (analysis.incremental.patched > 0);
   + a real serd subprocess: cold whole-circuit analyze of the fixture,
     then the same single-gate TMR edit three times against the returned
     fingerprint — each edit must patch, stay under 25% dirty, and the
     best edit must be >= 3x faster end-to-end than the cold analyze.

   The blocks are disjoint on purpose: a single-gate edit can only dirty
   its own block (~1/5 of the sites), so the < 25% bound is a structural
   property of the fixture, not a tuning accident.  Writes
   BENCH_harden.json (re-parsed after writing). *)

module Json = Obs.Json

let failures = ref 0
let checks = ref []

let check what ok =
  checks := (what, ok) :: !checks;
  if ok then Fmt.pr "ok: %s@." what
  else begin
    incr failures;
    Fmt.pr "FAIL: %s@." what
  end

let jstr key v = Option.bind (Json.member key v) Json.to_string_value
let jnum key v = Option.bind (Json.member key v) Json.to_number
let jlist key v = Option.value ~default:[] (Option.bind (Json.member key v) Json.to_list)

(* --- the dense fixture ----------------------------------------------------- *)

let blocks = 10
let block_inputs = 10
let block_gates = 600
let block_outputs = 10

(* Deterministic LCG so the fixture is identical on every run. *)
let dense_bench () =
  let buf = Buffer.create (1 lsl 16) in
  let state = ref 123456789 in
  let rand n =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod n
  in
  for b = 0 to blocks - 1 do
    for i = 0 to block_inputs - 1 do
      Buffer.add_string buf (Printf.sprintf "INPUT(b%d_i%d)\n" b i)
    done
  done;
  for b = 0 to blocks - 1 do
    for o = 0 to block_outputs - 1 do
      Buffer.add_string buf
        (Printf.sprintf "OUTPUT(b%d_g%d)\n" b (block_gates - block_outputs + o))
    done
  done;
  let kinds = [| "AND"; "OR"; "NAND"; "NOR" |] in
  for b = 0 to blocks - 1 do
    for g = 0 to block_gates - 1 do
      let sig_of j =
        if j < block_inputs then Printf.sprintf "b%d_i%d" b j
        else Printf.sprintf "b%d_g%d" b (j - block_inputs)
      in
      let avail = block_inputs + g in
      let window = min avail 120 in
      let a = avail - 1 - rand window in
      let c =
        let rec retry n =
          let c = avail - 1 - rand window in
          if c <> a || n = 0 then c else retry (n - 1)
        in
        retry 8
      in
      Buffer.add_string buf
        (Printf.sprintf "b%d_g%d = %s(%s, %s)\n" b g
           kinds.(rand (Array.length kinds))
           (sig_of a) (sig_of c))
    done
  done;
  Buffer.contents buf

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_cmd argv =
  Sys.command (String.concat " " (List.map Filename.quote argv))

(* --- serd subprocess (same plumbing as service_smoke) ---------------------- *)

type daemon = { pid : int; ic : in_channel; oc : out_channel }

let spawn exe args =
  let to_d_read, to_d_write = Unix.pipe ~cloexec:false () in
  let from_d_read, from_d_write = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process exe
      (Array.of_list (exe :: args))
      to_d_read from_d_write Unix.stderr
  in
  Unix.close to_d_read;
  Unix.close from_d_write;
  {
    pid;
    ic = Unix.in_channel_of_descr from_d_read;
    oc = Unix.out_channel_of_descr to_d_write;
  }

let rpc d v =
  Json.emit_line d.oc v;
  let line = input_line d.ic in
  match Json.parse line with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "unparseable response %S: %s" line msg)

let wait d =
  close_out_noerr d.oc;
  close_in_noerr d.ic;
  snd (Unix.waitpid [] d.pid)

(* --- main ------------------------------------------------------------------ *)

let () =
  ignore (Unix.alarm 300);
  let harden, serd =
    if Array.length Sys.argv > 2 then (Sys.argv.(1), Sys.argv.(2))
    else failwith "usage: harden_smoke SER_HARDEN_EXE SERD_EXE"
  in
  let fixture = "harden_smoke_dense.bench" in
  write_file fixture (dense_bench ());

  (* 1. derate curve on s27: monotone non-increasing *)
  let s27_json = "harden_smoke_s27.json" in
  check "ser_harden derate on s27 exits 0"
    (run_cmd [ harden; "embedded:s27"; "--steps"; "5"; "--json"; s27_json ] = 0);
  let s27 =
    match Json.parse_file s27_json with
    | Ok v -> v
    | Error msg -> failwith (Printf.sprintf "bad %s: %s" s27_json msg)
  in
  let s27_baseline = Option.value ~default:0.0 (jnum "baseline_fit" s27) in
  let s27_curve = jlist "curve" s27 in
  let s27_fits =
    List.filter_map (fun step -> jnum "total_fit" step) s27_curve
  in
  check "s27 derate curve has 5 steps"
    (List.length s27_curve = 5 && List.length s27_fits = 5);
  check "s27 baseline SER is positive" (s27_baseline > 0.0);
  let monotone =
    let rec go prev = function
      | [] -> true
      | fit :: rest -> fit <= prev && go fit rest
    in
    go s27_baseline s27_fits
  in
  check "s27 derate curve is monotone non-increasing" monotone;
  check "s27 derate curve actually reduces SER"
    (match List.rev s27_fits with
    | last :: _ -> last < s27_baseline
    | [] -> false);

  (* 2. tmr on the dense fixture: every step patched, < 25% dirty *)
  let dense_json = "harden_smoke_dense.json" in
  let dense_metrics = "harden_smoke_metrics.json" in
  check "ser_harden tmr on the dense fixture exits 0"
    (run_cmd
       [
         harden; fixture; "--strategy"; "tmr"; "--steps"; "3";
         "--json"; dense_json; "--metrics"; dense_metrics;
       ]
    = 0);
  let dense =
    match Json.parse_file dense_json with
    | Ok v -> v
    | Error msg -> failwith (Printf.sprintf "bad %s: %s" dense_json msg)
  in
  let dense_curve = jlist "curve" dense in
  check "dense tmr curve has 3 steps" (List.length dense_curve = 3);
  let max_dirty =
    List.fold_left
      (fun acc step ->
        max acc (Option.value ~default:1.0 (jnum "dirty_fraction" step)))
      0.0 dense_curve
  in
  check "every dense tmr step ran the patched analysis path"
    (dense_curve <> []
    && List.for_all (fun s -> jstr "analysis" s = Some "patched") dense_curve);
  check
    (Printf.sprintf
       "every dense tmr step re-swept < 25%% of sites (max %.1f%%)"
       (100.0 *. max_dirty))
    (max_dirty > 0.0 && max_dirty < 0.25);
  check "every dense tmr step spliced clean prior results"
    (List.for_all
       (fun s ->
         match jnum "clean_reused" s with
         | Some r -> r > 0.0
         | None -> false)
       dense_curve);
  let metrics =
    match Json.parse_file dense_metrics with
    | Ok v -> v
    | Error msg -> failwith (Printf.sprintf "bad %s: %s" dense_metrics msg)
  in
  let counter name =
    Option.bind (Json.member "counters" metrics) (jnum name)
  in
  let patched = Option.value ~default:0.0 (counter "analysis.incremental.patched") in
  check "analysis.incremental.patched > 0 in the metrics snapshot"
    (patched > 0.0);
  check "epp.incremental.dirty_sites and clean_reused are metered"
    (match
       (counter "epp.incremental.dirty_sites",
        counter "epp.incremental.clean_reused")
     with
    | Some d, Some r -> d > 0.0 && r > 0.0
    | _ -> false);

  (* 3. the serd edit path: cold analyze vs incremental edit, >= 3x *)
  let source = read_file fixture in
  let d = spawn serd [ "--domains"; "1" ] in
  let analyze_req =
    Json.Obj
      [
        ("id", Json.int 1);
        ("op", Json.String "analyze");
        ( "circuit",
          Json.Obj
            [ ("format", Json.String "bench"); ("source", Json.String source) ]
        );
      ]
  in
  let t0 = Obs.Clock.monotonic_seconds () in
  let r = rpc d analyze_req in
  let cold_s = Obs.Clock.monotonic_seconds () -. t0 in
  check "serd cold analyze of the fixture completes"
    (jstr "status" r = Some "ok" && jstr "cache" r = Some "miss");
  let fp = Option.value ~default:"?" (jstr "fingerprint" r) in
  check "serd cold analyze reports a fingerprint" (fp <> "?");
  let edit_req i =
    Json.Obj
      [
        ("id", Json.int (10 + i));
        ("op", Json.String "edit");
        ( "circuit",
          Json.Obj
            [
              ("format", Json.String "fingerprint"); ("source", Json.String fp);
            ] );
        ( "edit",
          Json.Obj
            [ ("kind", Json.String "tmr"); ("target", Json.String "b0_g150") ]
        );
      ]
  in
  let edit_times = ref [] in
  let edit_fracs = ref [] in
  for i = 1 to 3 do
    let t0 = Obs.Clock.monotonic_seconds () in
    let r = rpc d (edit_req i) in
    edit_times := (Obs.Clock.monotonic_seconds () -. t0) :: !edit_times;
    let inc v = Option.bind (Json.member "incremental" r) (jnum v) in
    let inc_s v = Option.bind (Json.member "incremental" r) (jstr v) in
    check (Printf.sprintf "serd edit %d completes" i)
      (jstr "status" r = Some "ok");
    check (Printf.sprintf "serd edit %d patched the analysis" i)
      (inc_s "analysis" = Some "patched");
    (match inc "dirty_fraction" with
    | Some f ->
      edit_fracs := f :: !edit_fracs;
      check
        (Printf.sprintf "serd edit %d re-swept < 25%% of sites (%.1f%%)" i
           (100.0 *. f))
        (f > 0.0 && f < 0.25)
    | None -> check (Printf.sprintf "serd edit %d reports dirty_fraction" i) false);
    check (Printf.sprintf "serd edit %d spliced clean results" i)
      (match inc "clean_reused" with
      | Some r -> r > 0.0
      | None -> false)
  done;
  let best_edit_s = List.fold_left min infinity !edit_times in
  let speedup = cold_s /. best_edit_s in
  check
    (Printf.sprintf "edit path is >= 3x faster than full recompute (%.1fx)"
       speedup)
    (speedup >= 3.0);
  let s = rpc d (Json.Obj [ ("op", Json.String "stats") ]) in
  check "serd stats counts the edits"
    (match jnum "edits" s with
    | Some e -> e >= 3.0
    | None -> false);
  check "serd stats reports patched incremental analyses"
    (match Option.bind (Json.member "incremental" s) (jnum "patched") with
    | Some p -> p >= 3.0
    | None -> false);
  ignore (rpc d (Json.Obj [ ("op", Json.String "shutdown") ]));
  check "serd exits cleanly" (wait d = Unix.WEXITED 0);

  (* --- artifact ------------------------------------------------------------ *)
  let dirty_fraction =
    List.fold_left max 0.0 !edit_fracs
  in
  let artifact_path = "BENCH_harden.json" in
  let artifact =
    Json.Obj
      [
        ("benchmark", Json.String "harden");
        ( "s27",
          Json.Obj
            [
              ("baseline_fit", Json.Number s27_baseline);
              ("steps", Json.int (List.length s27_curve));
              ( "final_fit",
                Json.Number
                  (match List.rev s27_fits with
                  | f :: _ -> f
                  | [] -> 0.0) );
            ] );
        ( "dense",
          Json.Obj
            [
              ( "nodes",
                Json.int (blocks * (block_inputs + block_gates)) );
              ("max_step_dirty_fraction", Json.Number max_dirty);
              ("analysis_incremental_patched", Json.Number patched);
            ] );
        ( "serd",
          Json.Obj
            [
              ("cold_analyze_ms", Json.Number (1000.0 *. cold_s));
              ("best_edit_ms", Json.Number (1000.0 *. best_edit_s));
              ("speedup", Json.Number speedup);
              ("epp.incremental.dirty_fraction", Json.Number dirty_fraction);
            ] );
        ( "checks",
          Json.List
            (List.rev_map
               (fun (what, ok) ->
                 Json.Obj [ ("name", Json.String what); ("ok", Json.Bool ok) ])
               !checks) );
      ]
  in
  Json.to_file ~pretty:true artifact_path artifact;
  (match Json.parse_file artifact_path with
  | Error msg -> check (Printf.sprintf "artifact re-parses (%s)" msg) false
  | Ok v ->
    check "artifact re-parses with the speedup figures"
      (Option.bind (Json.member "serd" v) (jnum "speedup") <> None
      && Option.bind (Json.member "serd" v)
           (jnum "epp.incremental.dirty_fraction")
         <> None));
  Fmt.pr "wrote %s@." artifact_path;

  if !failures > 0 then begin
    Fmt.pr "@.%d harden smoke check(s) failed@." !failures;
    exit 1
  end
  else Fmt.pr "@.harden smoke: all %d checks passed@." (List.length !checks)
