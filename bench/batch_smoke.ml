(* batch_smoke: CI gate for the level-synchronous batched sweep (dune build
   @batch-smoke).

   On the embedded s27 netlist and one dense generated DAG (the
   s1196-profile random DAG, whose cones cover a large fraction of the
   circuit — the regime the batch engine exists for), the sweep must

   - produce results bit-identical to the per-site workspace kernel on
     every site (p_sensitized and every per-observation entry),
   - populate the live epp.batch.* telemetry (blocks, sites, lane evals,
     mask skips, lanes-filled / level-width histograms),
   - reuse the shared circuit-analysis context: exactly one topological
     sort per circuit across engine creation, the kernel sweep, the mask
     pass and the batch propagation (analysis.topo.computed = 1),
   - and round-trip through the bench artifact: BENCH_batch.json is
     written, re-parsed, and the parsed counters re-checked.

   Any drift exits non-zero and fails the alias. *)

let bits = Int64.bits_of_float

let failures = ref 0
let checks = ref []

let check what ok =
  checks := (what, ok) :: !checks;
  if ok then Fmt.pr "ok: %s@." what
  else begin
    incr failures;
    Fmt.pr "FAIL: %s@." what
  end

let same_result (a : Epp.Epp_engine.site_result) (b : Epp.Epp_engine.site_result) =
  a.Epp.Epp_engine.site = b.Epp.Epp_engine.site
  && bits a.Epp.Epp_engine.p_sensitized = bits b.Epp.Epp_engine.p_sensitized
  && a.Epp.Epp_engine.cone_size = b.Epp.Epp_engine.cone_size
  && List.for_all2
       (fun (o1, p1) (o2, p2) -> o1 = o2 && bits p1 = bits p2)
       a.Epp.Epp_engine.per_observation b.Epp.Epp_engine.per_observation

(* One fixture under a fresh live sink, so the shared-context counter can be
   asserted per circuit: everything the sweep needs — the topological order,
   the forward CSR, the level buckets — must come from one Analysis context. *)
let run_fixture ~label ~expect_skips circuit =
  let metrics = Obs.Metrics.create () in
  Obs.Hooks.set_metrics metrics;
  let snapshot =
    Fun.protect ~finally:Obs.Hooks.reset (fun () ->
        let engine = Epp.Epp_engine.create circuit in
        let n = Netlist.Circuit.node_count circuit in
        let sites = Array.init n Fun.id in
        let ws = Epp.Epp_engine.Workspace.create engine in
        let kernel = Array.map (Epp.Epp_engine.Workspace.analyze_site ws) sites in
        let batch = Epp.Epp_batch.analyze_site_array engine sites in
        check
          (Printf.sprintf "%s: batch bit-identical to the kernel on all %d sites"
             label n)
          (Array.for_all2 same_result kernel batch);
        ignore (Epp.Epp_batch.density engine);
        Obs.Metrics.snapshot metrics)
  in
  let v name = Obs.Metrics.counter_value snapshot name in
  let n = Netlist.Circuit.node_count circuit in
  check
    (Printf.sprintf "%s: epp.batch.blocks > 0 (got %d)" label (v "epp.batch.blocks"))
    (v "epp.batch.blocks" > 0);
  check
    (Printf.sprintf "%s: epp.batch.sites = %d (got %d)" label n (v "epp.batch.sites"))
    (v "epp.batch.sites" = n);
  check
    (Printf.sprintf "%s: epp.batch.gate_lane_evals > 0 (got %d)" label
       (v "epp.batch.gate_lane_evals"))
    (v "epp.batch.gate_lane_evals" > 0);
  (* A multi-block sweep must skip gates outside each block's lane masks; a
     whole-circuit single block (s27: 17 sites, one block) legitimately
     reaches every gate through some lane, so only the zero floor holds. *)
  if expect_skips then
    check
      (Printf.sprintf "%s: epp.batch.nodes_skipped > 0 (got %d)" label
         (v "epp.batch.nodes_skipped"))
      (v "epp.batch.nodes_skipped" > 0)
  else
    check
      (Printf.sprintf "%s: single block, no mask skips (got %d)" label
         (v "epp.batch.nodes_skipped"))
      (v "epp.batch.nodes_skipped" = 0);
  check
    (Printf.sprintf "%s: no lane faults (got %d)" label (v "epp.batch.lane_faults"))
    (v "epp.batch.lane_faults" = 0);
  check
    (Printf.sprintf "%s: lanes_filled histogram populated" label)
    (match Obs.Metrics.histogram_value snapshot "epp.batch.lanes_filled" with
    | Some h -> h.Obs.Metrics.count > 0
    | None -> false);
  check
    (Printf.sprintf "%s: level_width histogram populated" label)
    (match Obs.Metrics.histogram_value snapshot "epp.batch.level_width" with
    | Some h -> h.Obs.Metrics.count > 0
    | None -> false);
  check
    (Printf.sprintf "%s: epp.batch.density gauge set" label)
    (Obs.Metrics.gauge_value snapshot "epp.batch.density" <> None);
  check
    (Printf.sprintf "%s: analysis.topo.computed = 1 (got %d)" label
       (v "analysis.topo.computed"))
    (v "analysis.topo.computed" = 1);
  (label, snapshot)

let () =
  let fixtures =
    [
      ("s27", false, Circuit_gen.Embedded.s27 ());
      ( "s1196-profile",
        true,
        Circuit_gen.Random_dag.generate ~seed:1 Circuit_gen.Profiles.s1196 );
    ]
  in
  let snapshots =
    List.map
      (fun (label, expect_skips, c) -> run_fixture ~label ~expect_skips c)
      fixtures
  in
  (* Write the artifact, then re-parse it and re-check the counters from the
     parsed JSON — the trajectory file must round-trip, not just serialize. *)
  let path = "BENCH_batch.json" in
  let open Obs.Json in
  to_file ~pretty:true path
    (Obj
       [
         ("benchmark", String "epp_batch_smoke");
         ( "checks",
           List
             (List.rev_map
                (fun (what, ok) -> Obj [ ("name", String what); ("ok", Bool ok) ])
                !checks) );
         ("failures", int !failures);
         ( "fixtures",
           List
             (List.map
                (fun (label, snapshot) ->
                  Obj
                    [
                      ("label", String label);
                      ("metrics", Obs.Metrics.to_json snapshot);
                    ])
                snapshots) );
       ]);
  Fmt.pr "wrote %s@." path;
  (match parse_file path with
  | Error msg -> check (Printf.sprintf "%s re-parses (%s)" path msg) false
  | Ok v ->
    let fixtures =
      Option.value ~default:[] (Option.bind (member "fixtures" v) to_list)
    in
    check
      (Printf.sprintf "%s re-parses with %d fixtures" path (List.length fixtures))
      (List.length fixtures = 2);
    let parsed_blocks f =
      Option.bind (member "metrics" f) (member "counters")
      |> Fun.flip Option.bind (member "epp.batch.blocks")
      |> Fun.flip Option.bind to_number
    in
    check "parsed epp.batch.blocks > 0 in every fixture"
      (fixtures <> []
      && List.for_all
           (fun f -> match parsed_blocks f with Some b -> b > 0.0 | None -> false)
           fixtures));
  if !failures > 0 then begin
    Fmt.pr "batch smoke: %d check(s) FAILED@." !failures;
    exit 1
  end
  else Fmt.pr "batch smoke: all checks passed@."
